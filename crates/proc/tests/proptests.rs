//! Property tests for the collective operations.
//!
//! The contract under test: a collective's result is a pure function of
//! the per-rank inputs — independent of thread scheduling, message arrival
//! order, and which rank reads the result. For floating-point reductions
//! that only holds because contributions are folded in fixed rank index
//! order; these tests pin it bitwise, under deliberately staggered rank
//! start-ups.

use bhut_proc::collectives::{
    all_gather, all_reduce_sum_f64, barrier, broadcast, exchange, reduce_sum_f64,
};
use bhut_proc::{
    local_mesh, FaultAction, FaultKind, FaultMode, FaultyTransport, ProcError, Transport, Trigger,
};
use proptest::prelude::*;
use std::time::Duration;

/// splitmix64 — deterministic value synthesis from a proptest-chosen seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Per-rank value vectors whose sums actually round (irrational-ish
/// ratios at mixed magnitudes), so fold order matters.
fn inputs(seed: u64, p: usize, len: usize) -> Vec<Vec<f64>> {
    let mut s = seed;
    (0..p)
        .map(|_| {
            (0..len)
                .map(|_| {
                    let a = (splitmix(&mut s) % 2_000_003) as f64 - 1_000_001.0;
                    let b = (splitmix(&mut s) % 997) as f64 + 1.0;
                    let scale = 10f64.powi((splitmix(&mut s) % 13) as i32 - 6);
                    a / b * scale
                })
                .collect()
        })
        .collect()
}

/// Run one collective round over a loopback mesh. With `stagger`, ranks
/// start in reverse order with small per-rank delays, shuffling message
/// arrival orders relative to the unstaggered run.
fn reduce_round(vals: &[Vec<f64>], stagger: bool) -> Vec<Vec<f64>> {
    let p = vals.len();
    let handles: Vec<_> = local_mesh(p)
        .into_iter()
        .zip(vals.to_vec())
        .map(|(mut t, mine)| {
            std::thread::spawn(move || {
                if stagger {
                    let delay = ((t.size() - t.rank()) % 3) as u64;
                    std::thread::sleep(Duration::from_millis(delay));
                }
                all_reduce_sum_f64(&mut t, 7, &mine).expect("reduce")
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
}

/// One round of the collective selected by `which` (0..6).
fn one_round(t: &mut dyn Transport, which: usize, round: u8) -> Result<(), ProcError> {
    let (rank, p) = (t.rank(), t.size());
    match which {
        0 => {
            let payload = (rank == 0).then(|| vec![round; 3]);
            broadcast(t, 0, 20, payload).map(|_| ())
        }
        1 => all_gather(t, 21, &[rank as u8, round]).map(|_| ()),
        2 => all_reduce_sum_f64(t, 22, &[rank as f64 + round as f64]).map(|_| ()),
        3 => reduce_sum_f64(t, 0, 23, &[1.5 * rank as f64 + round as f64]).map(|_| ()),
        4 => {
            let bins: Vec<Vec<u8>> =
                (0..p).map(|to| vec![to as u8; (rank + round as usize) % 3]).collect();
            exchange(t, 24, &bins).map(|_| ())
        }
        _ => barrier(t, 25),
    }
}

/// Lower bound on point-to-point operations any single rank performs in one
/// round of collective `which` — broadcast leaves / reduce leaves do one,
/// the symmetric pairwise collectives do 2(p−1).
fn min_ops_per_round(which: usize, p: usize) -> u64 {
    match which {
        0 | 3 => 1,
        _ => 2 * (p as u64 - 1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Liveness under rank death: whichever collective is running, and at
    /// whatever operation position the victim dies inside the fixed-order
    /// fold, no rank ever hangs — the victim surfaces `Injected`, every
    /// causally-blocked survivor surfaces `PeerClosed`/`Timeout`, and any
    /// rank reporting success genuinely finished all its rounds (one-way
    /// senders, e.g. reduce leaves, may legitimately keep succeeding).
    #[test]
    fn every_collective_errors_never_hangs_when_a_rank_dies(
        seed: u64,
        p in 2usize..=4,
        which in 0usize..6,
        round_frac in 0u64..4,
    ) {
        const ROUNDS: u8 = 8;
        let victim = (seed % p as u64) as usize;
        // An arbitrary op position inside the first 4 of 8 rounds, so the
        // kill always fires and survivors have rounds left to observe it.
        let per_round = min_ops_per_round(which, p);
        let kill_op = round_frac * per_round + (seed >> 32) % per_round;

        let handles: Vec<_> = local_mesh(p)
            .into_iter()
            .map(|mut t| {
                let actions = if t.rank() == victim {
                    vec![FaultAction {
                        rank: victim,
                        attempt: 0,
                        trigger: Trigger::Op(kill_op),
                        kind: FaultKind::Kill,
                    }]
                } else {
                    Vec::new()
                };
                std::thread::spawn(move || {
                    t.set_recv_timeout(Duration::from_millis(300));
                    let mut ft = FaultyTransport::new(t, FaultMode::Error, actions);
                    let mut completed = 0u8;
                    for round in 0..ROUNDS {
                        if let Err(e) = one_round(&mut ft, which, round) {
                            return (completed, Some(e));
                        }
                        completed += 1;
                    }
                    (completed, None)
                })
            })
            .collect();
        // Joining at all is the liveness property: a hung collective would
        // wedge the whole test binary here.
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().expect("no panic")).collect();

        match &outcomes[victim].1 {
            Some(ProcError::Injected(_)) => {}
            other => prop_assert!(false, "victim must die injected, got {other:?}"),
        }
        let mut survivors_errored = 0;
        for (rank, (completed, out)) in outcomes.iter().enumerate() {
            if rank == victim {
                continue;
            }
            match out {
                Some(ProcError::PeerClosed { .. }) | Some(ProcError::Timeout(_)) => {
                    survivors_errored += 1;
                }
                Some(other) => prop_assert!(false, "rank {rank}: wrong error class {other:?}"),
                None => prop_assert_eq!(
                    *completed, ROUNDS,
                    "rank {} stalled silently after {} rounds", rank, completed
                ),
            }
        }
        // Where a stronger guarantee than liveness holds, pin it: every
        // rank that *receives from* the victim each round must starve.
        // (Buffered sends are fire-and-forget, so a broadcast root or a
        // reduce leaf may legitimately finish all rounds past a dead
        // counterparty.)
        match which {
            1 | 2 | 4 | 5 => {
                // Symmetric pairwise collectives: everyone receives from
                // everyone, so no survivor can outrun the death.
                prop_assert_eq!(
                    survivors_errored,
                    p - 1,
                    "collective {} let a survivor run past a dead rank", which
                );
            }
            0 if victim == 0 => {
                // Dead broadcast root: every leaf starves.
                prop_assert_eq!(survivors_errored, p - 1, "leaves ran past a dead root");
            }
            3 if victim != 0 => {
                // Reduce root consumes the dead leaf's contribution.
                prop_assert!(outcomes[0].1.is_some(), "reduce root ran past a dead leaf");
            }
            _ => {}
        }
    }

    /// all-reduce is bitwise rank-order independent: every rank sees the
    /// same bits, staggered and unstaggered runs agree, and both equal the
    /// serial rank-index-order fold.
    #[test]
    fn all_reduce_is_rank_order_independent(seed: u64, p in 2usize..=5, len in 1usize..6) {
        let vals = inputs(seed, p, len);
        let mut serial = vec![0.0f64; len];
        for rank_vals in &vals {
            for (acc, v) in serial.iter_mut().zip(rank_vals) {
                *acc += *v;
            }
        }
        let plain = reduce_round(&vals, false);
        let staggered = reduce_round(&vals, true);
        for view in plain.iter().chain(&staggered) {
            prop_assert_eq!(view.len(), len);
            for (got, want) in view.iter().zip(&serial) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    /// all-gather delivers every contribution rank-indexed, and the
    /// pairwise exchange routes bin (i → j) exactly to j, regardless of
    /// payload sizes (including empty bins).
    #[test]
    fn gather_and_exchange_route_by_rank(seed: u64, p in 2usize..=5) {
        let mut s = seed;
        let payloads: Vec<Vec<u8>> = (0..p)
            .map(|_| {
                let len = (splitmix(&mut s) % 64) as usize;
                (0..len).map(|_| splitmix(&mut s) as u8).collect()
            })
            .collect();
        let expect = payloads.clone();
        let handles: Vec<_> = local_mesh(p)
            .into_iter()
            .zip(payloads)
            .map(|(mut t, mine)| {
                std::thread::spawn(move || {
                    let gathered = all_gather(&mut t, 8, &mine).expect("gather");
                    let rank = t.rank();
                    let bins: Vec<Vec<u8>> =
                        (0..t.size()).map(|to| vec![rank as u8; to]).collect();
                    let received = exchange(&mut t, 9, &bins).expect("exchange");
                    (gathered, received)
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            let (gathered, received) = h.join().expect("rank panicked");
            prop_assert_eq!(&gathered, &expect);
            for (from, bin) in received.iter().enumerate() {
                if from == rank {
                    prop_assert!(bin.is_empty());
                } else {
                    prop_assert_eq!(bin, &vec![from as u8; rank]);
                }
            }
        }
    }
}
