//! Property tests for the collective operations.
//!
//! The contract under test: a collective's result is a pure function of
//! the per-rank inputs — independent of thread scheduling, message arrival
//! order, and which rank reads the result. For floating-point reductions
//! that only holds because contributions are folded in fixed rank index
//! order; these tests pin it bitwise, under deliberately staggered rank
//! start-ups.

use bhut_proc::collectives::{all_gather, all_reduce_sum_f64, exchange};
use bhut_proc::{local_mesh, Transport};
use proptest::prelude::*;
use std::time::Duration;

/// splitmix64 — deterministic value synthesis from a proptest-chosen seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Per-rank value vectors whose sums actually round (irrational-ish
/// ratios at mixed magnitudes), so fold order matters.
fn inputs(seed: u64, p: usize, len: usize) -> Vec<Vec<f64>> {
    let mut s = seed;
    (0..p)
        .map(|_| {
            (0..len)
                .map(|_| {
                    let a = (splitmix(&mut s) % 2_000_003) as f64 - 1_000_001.0;
                    let b = (splitmix(&mut s) % 997) as f64 + 1.0;
                    let scale = 10f64.powi((splitmix(&mut s) % 13) as i32 - 6);
                    a / b * scale
                })
                .collect()
        })
        .collect()
}

/// Run one collective round over a loopback mesh. With `stagger`, ranks
/// start in reverse order with small per-rank delays, shuffling message
/// arrival orders relative to the unstaggered run.
fn reduce_round(vals: &[Vec<f64>], stagger: bool) -> Vec<Vec<f64>> {
    let p = vals.len();
    let handles: Vec<_> = local_mesh(p)
        .into_iter()
        .zip(vals.to_vec())
        .map(|(mut t, mine)| {
            std::thread::spawn(move || {
                if stagger {
                    let delay = ((t.size() - t.rank()) % 3) as u64;
                    std::thread::sleep(Duration::from_millis(delay));
                }
                all_reduce_sum_f64(&mut t, 7, &mine).expect("reduce")
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// all-reduce is bitwise rank-order independent: every rank sees the
    /// same bits, staggered and unstaggered runs agree, and both equal the
    /// serial rank-index-order fold.
    #[test]
    fn all_reduce_is_rank_order_independent(seed: u64, p in 2usize..=5, len in 1usize..6) {
        let vals = inputs(seed, p, len);
        let mut serial = vec![0.0f64; len];
        for rank_vals in &vals {
            for (acc, v) in serial.iter_mut().zip(rank_vals) {
                *acc += *v;
            }
        }
        let plain = reduce_round(&vals, false);
        let staggered = reduce_round(&vals, true);
        for view in plain.iter().chain(&staggered) {
            prop_assert_eq!(view.len(), len);
            for (got, want) in view.iter().zip(&serial) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    /// all-gather delivers every contribution rank-indexed, and the
    /// pairwise exchange routes bin (i → j) exactly to j, regardless of
    /// payload sizes (including empty bins).
    #[test]
    fn gather_and_exchange_route_by_rank(seed: u64, p in 2usize..=5) {
        let mut s = seed;
        let payloads: Vec<Vec<u8>> = (0..p)
            .map(|_| {
                let len = (splitmix(&mut s) % 64) as usize;
                (0..len).map(|_| splitmix(&mut s) as u8).collect()
            })
            .collect();
        let expect = payloads.clone();
        let handles: Vec<_> = local_mesh(p)
            .into_iter()
            .zip(payloads)
            .map(|(mut t, mine)| {
                std::thread::spawn(move || {
                    let gathered = all_gather(&mut t, 8, &mine).expect("gather");
                    let rank = t.rank();
                    let bins: Vec<Vec<u8>> =
                        (0..t.size()).map(|to| vec![rank as u8; to]).collect();
                    let received = exchange(&mut t, 9, &bins).expect("exchange");
                    (gathered, received)
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            let (gathered, received) = h.join().expect("rank panicked");
            prop_assert_eq!(&gathered, &expect);
            for (from, bin) in received.iter().enumerate() {
                if from == rank {
                    prop_assert!(bin.is_empty());
                } else {
                    prop_assert_eq!(bin, &vec![from as u8; rank]);
                }
            }
        }
    }
}
