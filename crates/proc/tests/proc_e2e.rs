//! End-to-end: real OS processes over the Unix-socket mesh.
//!
//! `harness = false`, because this binary is its own child executable: the
//! launcher re-invokes it with the rank environment set, and
//! [`bhut_proc::maybe_child`] takes over before the parent logic runs.
//! This is exactly the pattern host bench binaries use, exercised inside
//! `cargo test`.

use bhut_core::Scheme;
use bhut_proc::{
    local_mesh, maybe_child, run_rank, FaultPlan, Launcher, ProcConfig, RecoveryPolicy,
};
use std::collections::BTreeMap;

fn main() {
    maybe_child(); // child ranks run the step loop in here and exit

    let cfg = ProcConfig {
        scheme: Scheme::Spda,
        n: 96,
        steps: 2,
        grid_c: 4,
        seed: 11,
        ..ProcConfig::default()
    };

    // Single-process reference over the loopback transport.
    let mut t = local_mesh(1).pop().expect("one endpoint");
    let reference = run_rank(&mut t, &cfg).expect("reference run");
    let ref_by_id: BTreeMap<u32, _> = reference.owned.iter().map(|p| (p.id, *p)).collect();
    assert_eq!(ref_by_id.len(), cfg.n);

    // Two real child processes joined by the socket mesh.
    let run = Launcher::default().run(2, &cfg).expect("multi-process run");
    assert_eq!(run.ranks.len(), 2);
    assert_eq!(run.merged.len(), cfg.steps);

    let mut seen = 0usize;
    for rank in &run.ranks {
        for q in &rank.owned {
            let r = ref_by_id.get(&q.id).expect("known particle");
            assert_eq!(q.pos.x.to_bits(), r.pos.x.to_bits(), "id {} pos.x", q.id);
            assert_eq!(q.pos.y.to_bits(), r.pos.y.to_bits());
            assert_eq!(q.pos.z.to_bits(), r.pos.z.to_bits());
            assert_eq!(q.vel.x.to_bits(), r.vel.x.to_bits());
            assert_eq!(q.vel.y.to_bits(), r.vel.y.to_bits());
            assert_eq!(q.vel.z.to_bits(), r.vel.z.to_bits());
            seen += 1;
        }
    }
    assert_eq!(seen, cfg.n, "every particle owned exactly once across processes");

    // The merged profile carries both ranks' spans in the shared schema.
    let merged = &run.merged[0];
    assert_eq!(merged.threads, 2);
    assert!(merged.spans.iter().any(|s| s.rank == 1), "rank 1 spans present");

    println!("proc_e2e: 2 real processes matched the single-process path bitwise");

    // Supervised recovery: rank 1 is killed (a real process::exit) entering
    // step 1; the supervisor rolls the mesh back to the checkpoint epoch and
    // respawns it. The recovered state must match the fault-free reference
    // bitwise.
    let plan = FaultPlan::kill_at_step(1, 1);
    let sup = Launcher::default()
        .run_supervised(2, &cfg, &plan, RecoveryPolicy::default())
        .expect("supervised run recovers");
    assert_eq!(sup.recoveries.len(), 1, "exactly one recovery: {:?}", sup.recoveries);
    assert_eq!(sup.ranks, 2);
    assert_eq!(sup.counters.respawns, 1);
    assert!(sup.counters.checkpoints >= 1, "checkpoints on disk: {:?}", sup.counters);
    let event = &sup.recoveries[0];
    assert!(
        event.detail.contains('['),
        "exit-status triage missing from recovery detail: {}",
        event.detail
    );
    assert_eq!(event.resume_epoch, 1, "rolled back to the step-1 checkpoint epoch");
    assert_eq!(sup.recovery_profile.spans.len(), 1, "one recovery span emitted");

    let mut seen = 0usize;
    for rank in &sup.run.ranks {
        for q in &rank.owned {
            let r = ref_by_id.get(&q.id).expect("known particle");
            assert_eq!(q.pos.x.to_bits(), r.pos.x.to_bits(), "recovered id {} pos.x", q.id);
            assert_eq!(q.vel.z.to_bits(), r.vel.z.to_bits(), "recovered id {} vel.z", q.id);
            seen += 1;
        }
    }
    assert_eq!(seen, cfg.n, "recovered run owns every particle exactly once");

    // Recovery exhausted: a kill that re-fires on every attempt must
    // surface the distinct error (and exit code class) for triage.
    let persistent = FaultPlan {
        seed: 0,
        actions: (0..=1)
            .map(|attempt| bhut_proc::FaultAction {
                rank: 0,
                attempt,
                trigger: bhut_proc::Trigger::Step(0),
                kind: bhut_proc::FaultKind::Kill,
            })
            .collect(),
    };
    let err = Launcher::default()
        .run_supervised(2, &cfg, &persistent, RecoveryPolicy { max_recoveries: 1, degrade: false })
        .expect_err("persistent fault must exhaust recovery");
    match err {
        bhut_proc::ProcError::RecoveryExhausted { attempts: 1, ref last } => {
            assert!(last.contains("injected-fault"), "triage class missing: {last}");
        }
        ref other => panic!("expected RecoveryExhausted, got {other}"),
    }

    println!("proc_e2e: supervised kill-recovery matched the fault-free run bitwise");
}
