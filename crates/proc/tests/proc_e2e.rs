//! End-to-end: real OS processes over the Unix-socket mesh.
//!
//! `harness = false`, because this binary is its own child executable: the
//! launcher re-invokes it with the rank environment set, and
//! [`bhut_proc::maybe_child`] takes over before the parent logic runs.
//! This is exactly the pattern host bench binaries use, exercised inside
//! `cargo test`.

use bhut_core::Scheme;
use bhut_proc::{local_mesh, maybe_child, run_rank, Launcher, ProcConfig};
use std::collections::BTreeMap;

fn main() {
    maybe_child(); // child ranks run the step loop in here and exit

    let cfg = ProcConfig {
        scheme: Scheme::Spda,
        n: 96,
        steps: 2,
        grid_c: 4,
        seed: 11,
        ..ProcConfig::default()
    };

    // Single-process reference over the loopback transport.
    let mut t = local_mesh(1).pop().expect("one endpoint");
    let reference = run_rank(&mut t, &cfg).expect("reference run");
    let ref_by_id: BTreeMap<u32, _> = reference.owned.iter().map(|p| (p.id, *p)).collect();
    assert_eq!(ref_by_id.len(), cfg.n);

    // Two real child processes joined by the socket mesh.
    let run = Launcher::default().run(2, &cfg).expect("multi-process run");
    assert_eq!(run.ranks.len(), 2);
    assert_eq!(run.merged.len(), cfg.steps);

    let mut seen = 0usize;
    for rank in &run.ranks {
        for q in &rank.owned {
            let r = ref_by_id.get(&q.id).expect("known particle");
            assert_eq!(q.pos.x.to_bits(), r.pos.x.to_bits(), "id {} pos.x", q.id);
            assert_eq!(q.pos.y.to_bits(), r.pos.y.to_bits());
            assert_eq!(q.pos.z.to_bits(), r.pos.z.to_bits());
            assert_eq!(q.vel.x.to_bits(), r.vel.x.to_bits());
            assert_eq!(q.vel.y.to_bits(), r.vel.y.to_bits());
            assert_eq!(q.vel.z.to_bits(), r.vel.z.to_bits());
            seen += 1;
        }
    }
    assert_eq!(seen, cfg.n, "every particle owned exactly once across processes");

    // The merged profile carries both ranks' spans in the shared schema.
    let merged = &run.merged[0];
    assert_eq!(merged.threads, 2);
    assert!(merged.spans.iter().any(|s| s.rank == 1), "rank 1 spans present");

    println!("proc_e2e: 2 real processes matched the single-process path bitwise");
}
