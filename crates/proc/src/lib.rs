//! S14 — the real multi-process backend.
//!
//! Everything before this crate *models* the distributed machine: the
//! virtual-clock simulator charges collective costs against a topology and
//! predicts per-phase time shares. This crate runs the same three
//! formulations — SPSA, SPDA, DPDA — over actual OS processes joined by
//! Unix-domain sockets, emits the same [`bhut_obs::StepProfile`] schema
//! from each rank, and so puts *measured* phase shares in the same table
//! as the simulator's predictions (`proc_compare` in `bhut-bench` writes
//! the comparison the CI gate consumes).
//!
//! Layering:
//!
//! * [`wire`] — length-prefixed frames and bit-exact binary encodings.
//! * [`transport`] — the [`transport::Transport`] trait with two
//!   implementations: in-process loopback ([`transport::local_mesh`]) and
//!   the socket mesh ([`transport::SocketMesh`]). All higher layers are
//!   generic over it, so tests drive the full stack from threads and the
//!   launcher drives the identical stack from processes.
//! * [`collectives`] — broadcast / all-gather / reduce / bin exchange /
//!   barrier, deadlock-free and rank-order deterministic.
//! * [`rank`] — the per-rank bulk-synchronous step loop
//!   ([`rank::run_rank`]).
//! * [`launch`] — parent-side process orchestration
//!   ([`launch::Launcher`]) and the child hook ([`launch::maybe_child`]).

pub mod ckpt;
pub mod collectives;
pub mod fault;
pub mod launch;
pub mod rank;
pub mod transport;
pub mod wire;

pub use fault::{FaultAction, FaultKind, FaultMode, FaultPlan, FaultyTransport, Trigger};
pub use launch::{
    degraded_size, maybe_child, Launcher, RecoveryEvent, RecoveryPolicy, RunResult,
    SupervisedResult,
};
pub use rank::{run_rank, ProcConfig, RankOutcome};
pub use transport::{local_mesh, Backoff, ProcError, SocketMesh, Transport};
