//! Per-rank step checkpoints: the restartable unit behind crash recovery.
//!
//! Layout: one directory per **epoch** under the checkpoint root, one shard
//! per rank inside it:
//!
//! ```text
//! <ckpt_dir>/epoch00000004/rank2of4.ckpt
//! ```
//!
//! Epoch `e` means "`e` steps completed": shard `r` holds exactly the
//! particles rank `r` owned after step `e-1`'s migration, serialized on the
//! Snapshot v2 schema with [`bhut_sim::snapshot::save_checkpoint`] — atomic
//! (temp file + rename) and self-validating (trailing marker). An epoch is
//! **complete** iff all of its shards load cleanly; torn or missing shards
//! make the whole epoch invisible to [`CkptStore::latest_complete_epoch`],
//! so a crash mid-checkpoint can only ever cost one cadence interval, never
//! correctness.
//!
//! Because the replicated-tree step loop makes the global trajectory a pure
//! function of the global state (masked force rows are bitwise equal to
//! full-run rows, and the rebalance inputs are all-reduced over every
//! particle), a resume may either continue the recorded ownership exactly
//! (same rank count: each rank takes its own shard) or re-derive ownership
//! from the assembled global state (changed rank count, i.e. `--degrade`) —
//! both continue the *state* trajectory bit-for-bit.

use bhut_geom::{Particle, ParticleSet};
use bhut_sim::snapshot::{load_checkpoint, save_checkpoint, Snapshot};
use std::io;
use std::path::{Path, PathBuf};

/// Epoch/shard naming and validation over one checkpoint directory.
#[derive(Debug, Clone)]
pub struct CkptStore {
    dir: PathBuf,
}

impl CkptStore {
    pub fn new(dir: impl Into<PathBuf>) -> CkptStore {
        CkptStore { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn epoch_dir(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("epoch{epoch:08}"))
    }

    pub fn shard_path(&self, epoch: u64, rank: usize, of: usize) -> PathBuf {
        self.epoch_dir(epoch).join(format!("rank{rank}of{of}.ckpt"))
    }

    /// Write rank `rank`'s shard of epoch `epoch` atomically.
    pub fn write_shard(
        &self,
        epoch: u64,
        rank: usize,
        of: usize,
        owned: &[Particle],
    ) -> io::Result<()> {
        std::fs::create_dir_all(self.epoch_dir(epoch))?;
        let snap = Snapshot {
            time: epoch as f64,
            particles: ParticleSet::new(owned.to_vec()),
            rungs: None,
            config: None,
        };
        save_checkpoint(&self.shard_path(epoch, rank, of), &snap)
    }

    /// The newest epoch all of whose shards validate, with its rank count:
    /// `(epoch, of)`. Deterministic over a quiescent directory, so every
    /// resuming rank picks the same epoch without coordination (no new
    /// epoch can complete before all ranks have passed their startup scan —
    /// completing one requires every rank to finish a step first).
    pub fn latest_complete_epoch(&self) -> Option<(u64, usize)> {
        let mut epochs: Vec<u64> = std::fs::read_dir(&self.dir)
            .ok()?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str()?.strip_prefix("epoch")?.parse().ok())
            .collect();
        epochs.sort_unstable();
        epochs.into_iter().rev().find_map(|epoch| {
            let of = self.shard_count(epoch)?;
            let complete =
                (0..of).all(|rank| load_checkpoint(&self.shard_path(epoch, rank, of)).is_ok());
            complete.then_some((epoch, of))
        })
    }

    /// Number of complete epochs currently on disk (supervisor accounting).
    pub fn complete_epochs(&self) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return 0 };
        entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str()?.strip_prefix("epoch")?.parse::<u64>().ok())
            .filter(|&epoch| {
                self.shard_count(epoch).is_some_and(|of| {
                    (0..of).all(|rank| load_checkpoint(&self.shard_path(epoch, rank, of)).is_ok())
                })
            })
            .count() as u64
    }

    /// How many ranks epoch `epoch` was written by, parsed from its shard
    /// names (`rank{r}of{p}.ckpt` — the `p` of any shard present).
    fn shard_count(&self, epoch: u64) -> Option<usize> {
        std::fs::read_dir(self.epoch_dir(epoch)).ok()?.filter_map(|e| e.ok()).find_map(|e| {
            let name = e.file_name();
            let rest = name.to_str()?.strip_prefix("rank")?.strip_suffix(".ckpt")?;
            let (_, of) = rest.split_once("of")?;
            of.parse().ok()
        })
    }

    /// Load every shard of epoch `epoch`; `shards[r]` is rank `r`'s owned
    /// set as checkpointed.
    pub fn load_epoch(&self, epoch: u64, of: usize) -> io::Result<Vec<Vec<Particle>>> {
        (0..of)
            .map(|rank| {
                let snap = load_checkpoint(&self.shard_path(epoch, rank, of))?;
                Ok(snap.particles.particles)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::Vec3;

    fn particle(id: u32) -> Particle {
        Particle::new(id, 1.0 + id as f64, Vec3::new(id as f64, 0.5, -1.0), Vec3::ZERO)
    }

    fn tmp_store(name: &str) -> CkptStore {
        let dir = std::env::temp_dir().join(format!("bhut_ckpt_store_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        CkptStore::new(dir)
    }

    #[test]
    fn empty_or_missing_dir_has_no_epoch() {
        let store = tmp_store("empty");
        assert_eq!(store.latest_complete_epoch(), None);
        std::fs::create_dir_all(store.dir()).unwrap();
        assert_eq!(store.latest_complete_epoch(), None);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn complete_epochs_win_over_newer_incomplete_ones() {
        let store = tmp_store("incomplete");
        for rank in 0..3 {
            store.write_shard(2, rank, 3, &[particle(rank as u32)]).unwrap();
        }
        // Epoch 5 exists but is missing rank 2's shard — invisible.
        store.write_shard(5, 0, 3, &[particle(0)]).unwrap();
        store.write_shard(5, 1, 3, &[particle(1)]).unwrap();
        assert_eq!(store.latest_complete_epoch(), Some((2, 3)));

        // Completing epoch 5 promotes it.
        store.write_shard(5, 2, 3, &[particle(2)]).unwrap();
        assert_eq!(store.latest_complete_epoch(), Some((5, 3)));

        // A torn shard (marker chopped off) demotes it again.
        let path = store.shard_path(5, 1, 3);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();
        assert_eq!(store.latest_complete_epoch(), Some((2, 3)));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn load_epoch_roundtrips_shards_bitwise() {
        let store = tmp_store("roundtrip");
        let owned: Vec<Vec<Particle>> =
            vec![vec![particle(0), particle(2)], vec![], vec![particle(1)]];
        for (rank, shard) in owned.iter().enumerate() {
            store.write_shard(7, rank, 3, shard).unwrap();
        }
        assert_eq!(store.latest_complete_epoch(), Some((7, 3)));
        let back = store.load_epoch(7, 3).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in back.iter().flatten().zip(owned.iter().flatten()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.pos.x.to_bits(), b.pos.x.to_bits());
            assert_eq!(a.mass.to_bits(), b.mass.to_bits());
        }
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
