//! Parent-side process launcher and the child-side entry hook.
//!
//! The parent binds a control socket, spawns one child per rank (same
//! executable, rank identity in environment variables), and collects each
//! rank's [`RankOutcome`] over the control channel. Any host binary
//! becomes multi-process capable by calling [`maybe_child`] at the top of
//! `main`: in a child process it runs the rank loop and exits; in the
//! parent (or any ordinary invocation) it returns immediately.
//!
//! Failure handling is explicit: the parent polls child liveness while
//! waiting on the control channel, so a rank that panics (its peers then
//! fail their step with `PeerClosed` and exit) surfaces as
//! [`ProcError::DeadRank`] naming the rank — never a parent hang. On any
//! error the parent kills and reaps every remaining child before
//! returning, and the rendezvous directory is removed either way.

use crate::ckpt::CkptStore;
use crate::fault::{FaultMode, FaultPlan, FaultyTransport};
use crate::rank::{run_rank, ProcConfig, RankOutcome};
use crate::transport::{ProcError, SocketMesh};
use crate::wire::{
    decode_forces, decode_particles, encode_forces, encode_particles, read_frame, write_frame,
};
use bhut_core::balance::Scheme;
use bhut_obs::{now, phase, FaultCounters, Span, StepProfile};
use std::io::ErrorKind;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Environment variables carrying the child's identity.
pub const ENV_RANK: &str = "BHUT_PROC_RANK";
pub const ENV_RANKS: &str = "BHUT_PROC_RANKS";
pub const ENV_DIR: &str = "BHUT_PROC_DIR";
pub const ENV_CFG: &str = "BHUT_PROC_CFG";
pub const ENV_TIMEOUT_MS: &str = "BHUT_PROC_TIMEOUT_MS";
/// Encoded [`FaultPlan`] for this run (absent = no injection). The plan
/// travels on the same parent→child configuration channel as
/// [`ENV_CFG`] — set before exec, so it is race-free and needs no extra
/// protocol round-trip on the ctrl socket.
pub const ENV_FAULTS: &str = "BHUT_PROC_FAULTS";
/// Recovery attempt this mesh belongs to (0 = initial launch). Children
/// select their fault actions by `(rank, attempt)`, so a kill consumed on
/// attempt 0 does not re-fire on the rank that replaced its victim.
pub const ENV_ATTEMPT: &str = "BHUT_PROC_ATTEMPT";

/// Control-channel frame tags (child → parent).
mod ctrl {
    pub const HELLO: u16 = 0x10;
    pub const FORCES: u16 = 0x11;
    pub const OWNED: u16 = 0x12;
    pub const PROFILE: u16 = 0x13;
    pub const DONE: u16 = 0x14;
}

/// Spawns ranks as OS processes and gathers their outcomes.
pub struct Launcher {
    /// Executable to spawn; defaults to the current executable, which must
    /// call [`maybe_child`] before doing anything else.
    pub program: PathBuf,
    /// Arguments passed through to the child (the child's own CLI never
    /// sees them before `maybe_child` takes over).
    pub args: Vec<String>,
    /// Deadline for mesh setup, any single collective wait, and the
    /// parent's wait for results.
    pub timeout: Duration,
}

/// One completed multi-process run.
#[derive(Debug)]
pub struct RunResult {
    /// Per-rank outcomes, indexed by rank.
    pub ranks: Vec<RankOutcome>,
    /// Per-step profiles folded across ranks
    /// ([`StepProfile::from_rank_profiles`]) — measured shares in the same
    /// schema the simulator's predictions use.
    pub merged: Vec<StepProfile>,
}

/// Run the rank loop and exit if this process is a spawned child; return
/// immediately otherwise. Call first in `main`.
pub fn maybe_child() {
    if std::env::var_os(ENV_RANK).is_none() {
        return;
    }
    let code = match child_main() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("bhut-proc child failed: {e}");
            // Distinct exit code per failure class (see
            // `ProcError::exit_code`), so the supervisor and CI triage dead
            // ranks from the exit status alone.
            e.exit_code()
        }
    };
    std::process::exit(code);
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Result<T, ProcError> {
    std::env::var(key)
        .map_err(|_| ProcError::Protocol(format!("{key} not set")))?
        .parse()
        .map_err(|_| ProcError::Protocol(format!("{key} unparsable")))
}

fn child_main() -> Result<(), ProcError> {
    let rank: usize = env_parse(ENV_RANK)?;
    let p: usize = env_parse(ENV_RANKS)?;
    let dir: PathBuf = env_parse::<String>(ENV_DIR)?.into();
    let timeout = Duration::from_millis(env_parse::<u64>(ENV_TIMEOUT_MS).unwrap_or(30_000));
    let cfg = ProcConfig::decode(&env_parse::<String>(ENV_CFG)?).map_err(ProcError::Protocol)?;

    let mesh = SocketMesh::connect(&dir, rank, p, timeout)?;
    let outcome = match std::env::var(ENV_FAULTS).ok() {
        Some(encoded) => {
            let plan = FaultPlan::decode(&encoded).map_err(ProcError::Protocol)?;
            let attempt: u32 = env_parse(ENV_ATTEMPT).unwrap_or(0);
            let mut faulty =
                FaultyTransport::new(mesh, FaultMode::Exit, plan.actions_for(rank, attempt));
            run_rank(&mut faulty, &cfg)?
        }
        None => {
            let mut mesh = mesh;
            run_rank(&mut mesh, &cfg)?
        }
    };

    let mut conn = UnixStream::connect(dir.join("ctrl.sock"))?;
    write_frame(&mut conn, ctrl::HELLO, &(rank as u32).to_le_bytes())?;
    write_frame(&mut conn, ctrl::FORCES, &encode_forces(&outcome.forces))?;
    write_frame(&mut conn, ctrl::OWNED, &encode_particles(&outcome.owned))?;
    for prof in &outcome.profiles {
        write_frame(&mut conn, ctrl::PROFILE, prof.to_json().as_bytes())?;
    }
    write_frame(&mut conn, ctrl::DONE, &[])?;
    Ok(())
}

static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

fn rendezvous_dir() -> PathBuf {
    // Unique per (process, run); short, because Unix socket paths cap out
    // around 100 bytes.
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bhut-proc-{}-{seq}", std::process::id()))
}

impl Default for Launcher {
    fn default() -> Self {
        Launcher {
            program: std::env::current_exe().expect("current executable path"),
            args: Vec::new(),
            timeout: Duration::from_secs(60),
        }
    }
}

impl Launcher {
    /// Launch `p` ranks running `cfg` and collect every outcome. Children
    /// are killed and reaped on any failure; the rendezvous directory is
    /// always removed.
    pub fn run(&self, p: usize, cfg: &ProcConfig) -> Result<RunResult, ProcError> {
        self.run_attempt(p, cfg, None)
    }

    fn run_attempt(
        &self,
        p: usize,
        cfg: &ProcConfig,
        faults: Option<(&FaultPlan, u32)>,
    ) -> Result<RunResult, ProcError> {
        assert!(p >= 1);
        let dir = rendezvous_dir();
        std::fs::create_dir_all(&dir)?;
        let result = self.run_in(&dir, p, cfg, faults);
        let _ = std::fs::remove_dir_all(&dir);
        result
    }

    fn run_in(
        &self,
        dir: &Path,
        p: usize,
        cfg: &ProcConfig,
        faults: Option<(&FaultPlan, u32)>,
    ) -> Result<RunResult, ProcError> {
        let listener = UnixListener::bind(dir.join("ctrl.sock"))?;
        listener.set_nonblocking(true)?;

        let mut children: Vec<Child> = Vec::with_capacity(p);
        for rank in 0..p {
            let mut command = Command::new(&self.program);
            command
                .args(&self.args)
                .env(ENV_RANK, rank.to_string())
                .env(ENV_RANKS, p.to_string())
                .env(ENV_DIR, dir)
                .env(ENV_CFG, cfg.encode())
                .env(ENV_TIMEOUT_MS, self.timeout.as_millis().to_string())
                .stdin(Stdio::null());
            if let Some((plan, attempt)) = faults {
                command.env(ENV_FAULTS, plan.encode()).env(ENV_ATTEMPT, attempt.to_string());
            }
            let spawned = command.spawn();
            match spawned {
                Ok(child) => children.push(child),
                Err(e) => {
                    kill_all(&mut children);
                    return Err(ProcError::Io(e));
                }
            }
        }

        let result = collect(&listener, &mut children, p, self.timeout);
        match result {
            Ok(run) => {
                // Children exit right after reporting; reap them.
                for (rank, child) in children.iter_mut().enumerate() {
                    match child.wait() {
                        Ok(status) if !status.success() => {
                            return Err(ProcError::DeadRank {
                                rank,
                                detail: format!("exited {} after reporting", describe(&status)),
                            });
                        }
                        Ok(_) => {}
                        Err(e) => return Err(ProcError::Io(e)),
                    }
                }
                Ok(run)
            }
            Err(e) => {
                kill_all(&mut children);
                Err(e)
            }
        }
    }

    /// Launch `p` ranks under supervision: on [`ProcError::DeadRank`] the
    /// whole mesh is torn down and relaunched from the latest complete
    /// checkpoint epoch — at full width, or at [`degraded_size`] under
    /// `policy.degrade`. Survivor state need not be trusted: the dead
    /// rank's streams are broken mid-collective, so every rank rolls back
    /// to the epoch anyway, and the relaunch *is* the recovery barrier.
    ///
    /// `cfg.ckpt_dir` defaults to a run-private temp directory (removed on
    /// success) and `ckpt_every` to 1 when unset, so callers opt into
    /// layout only when they want resumable artifacts.
    pub fn run_supervised(
        &self,
        p: usize,
        cfg: &ProcConfig,
        plan: &FaultPlan,
        policy: RecoveryPolicy,
    ) -> Result<SupervisedResult, ProcError> {
        let mut cfg = cfg.clone();
        let own_ckpt_dir = cfg.ckpt_dir.is_none();
        if own_ckpt_dir {
            let dir = rendezvous_dir().with_extension("ckpt");
            cfg.ckpt_dir = Some(dir.to_string_lossy().into_owned());
        }
        if cfg.ckpt_every == 0 {
            cfg.ckpt_every = 1;
        }
        let store = CkptStore::new(cfg.ckpt_dir.clone().expect("set above"));
        std::fs::create_dir_all(store.dir())?;

        let mut ranks = p;
        let mut counters = FaultCounters::default();
        let mut recoveries: Vec<RecoveryEvent> = Vec::new();
        let mut recovery_profile = StepProfile::new(1);
        let epoch0 = now();
        let mut attempt = 0u32;
        let result = loop {
            let result = self.run_attempt(ranks, &cfg, Some((plan, attempt)));
            match result {
                Ok(run) => break Ok(run),
                Err(ProcError::DeadRank { rank, detail }) => {
                    if attempt >= policy.max_recoveries {
                        break Err(ProcError::RecoveryExhausted {
                            attempts: attempt,
                            last: format!("rank {rank}: {detail}"),
                        });
                    }
                    let t_detect = now();
                    let resume_epoch = store.latest_complete_epoch().map_or(0, |(e, _)| e);
                    if policy.degrade {
                        let shrunk = degraded_size(cfg.scheme, ranks);
                        counters.degraded_ranks += (ranks - shrunk) as u64;
                        ranks = shrunk;
                    }
                    counters.respawns += 1;
                    counters.rollback_steps += (cfg.steps as u64).saturating_sub(resume_epoch);
                    cfg.resume = true;
                    recoveries.push(RecoveryEvent {
                        attempt,
                        failed_rank: rank,
                        detail,
                        resume_epoch,
                        ranks_after: ranks,
                    });
                    recovery_profile.record(Span::new(
                        0,
                        attempt as u64,
                        phase::RECOVERY,
                        t_detect - epoch0,
                        now() - epoch0,
                    ));
                    attempt += 1;
                }
                Err(e) => break Err(e),
            }
        };
        counters.checkpoints = store.complete_epochs();
        if own_ckpt_dir {
            let _ = std::fs::remove_dir_all(store.dir());
        }
        let run = result?;
        Ok(SupervisedResult { run, recoveries, ranks, counters, recovery_profile })
    }
}

/// How the supervisor responds to a dead rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Maximum respawn attempts after the initial launch; spending them all
    /// surfaces [`ProcError::RecoveryExhausted`].
    pub max_recoveries: u32,
    /// Shrink the mesh instead of respawning at full width: p−1 ranks
    /// (SPSA: the largest power of two below p) re-run the scheme's own
    /// rebalance over the checkpointed state to absorb the dead rank's
    /// particles.
    pub degrade: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_recoveries: 2, degrade: false }
    }
}

/// One supervisor intervention: which attempt failed, why, and where the
/// replacement mesh resumed.
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// The attempt that failed (0 = initial launch).
    pub attempt: u32,
    /// Rank the failure was attributed to.
    pub failed_rank: usize,
    /// Exit-status triage from [`ProcError::classify_exit`] plus context.
    pub detail: String,
    /// Checkpoint epoch the next attempt resumed from (0 = from the ICs).
    pub resume_epoch: u64,
    /// Mesh width after this recovery.
    pub ranks_after: usize,
}

/// A supervised run's outcome: the results plus the recovery record.
#[derive(Debug)]
pub struct SupervisedResult {
    pub run: RunResult,
    /// Recoveries performed (0 = the first attempt succeeded).
    pub recoveries: Vec<RecoveryEvent>,
    /// Final mesh width (smaller than the launch width under `--degrade`).
    pub ranks: usize,
    /// Supervisor-side fault accounting (respawns, rollback, checkpoints on
    /// disk). Child-side injection counters live in the children.
    pub counters: FaultCounters,
    /// One S11 span per recovery (`phase::RECOVERY`, superstep = attempt),
    /// timing the supervisor's detect→respawn turnaround.
    pub recovery_profile: StepProfile,
}

/// The mesh width after degrading away one rank: p−1, except SPSA — whose
/// communication schedule is hypercube-structured — drops to the largest
/// power of two below p.
pub fn degraded_size(scheme: Scheme, p: usize) -> usize {
    let q = p.saturating_sub(1).max(1);
    match scheme {
        Scheme::Spsa => {
            if q.is_power_of_two() {
                q
            } else {
                q.next_power_of_two() / 2
            }
        }
        Scheme::Spda | Scheme::Dpda => q,
    }
}

fn describe(status: &std::process::ExitStatus) -> String {
    match status.code().and_then(ProcError::classify_exit) {
        Some(class) => format!("{status} [{class}]"),
        None => format!("{status}"),
    }
}

fn kill_all(children: &mut [Child]) {
    for child in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Accept one control connection per rank, interleaved with liveness polls
/// so a dead child is reported as [`ProcError::DeadRank`] instead of
/// waiting out the full deadline.
fn collect(
    listener: &UnixListener,
    children: &mut [Child],
    p: usize,
    timeout: Duration,
) -> Result<RunResult, ProcError> {
    let deadline = Instant::now() + timeout;
    let mut outcomes: Vec<Option<RankOutcome>> = (0..p).map(|_| None).collect();
    let mut done = 0usize;
    while done < p {
        // A child that died before reporting will never connect; fail fast
        // with its identity and exit status.
        for (rank, child) in children.iter_mut().enumerate() {
            if outcomes[rank].is_some() {
                continue;
            }
            if let Some(status) = child.try_wait()? {
                if !status.success() {
                    return Err(ProcError::DeadRank {
                        rank,
                        detail: format!("exited {} before reporting", describe(&status)),
                    });
                }
            }
        }
        match listener.accept() {
            Ok((mut conn, _)) => {
                conn.set_nonblocking(false)?;
                conn.set_read_timeout(Some(timeout))?;
                let (rank, outcome) = read_report(&mut conn)?;
                if rank >= p || outcomes[rank].is_some() {
                    return Err(ProcError::Protocol(format!("bad report from rank {rank}")));
                }
                outcomes[rank] = Some(outcome);
                done += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    let missing: Vec<usize> = (0..p).filter(|&r| outcomes[r].is_none()).collect();
                    return Err(ProcError::DeadRank {
                        rank: missing[0],
                        detail: format!("no report within {timeout:?} (missing {missing:?})"),
                    });
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(ProcError::Io(e)),
        }
    }

    let ranks: Vec<RankOutcome> = outcomes.into_iter().map(|o| o.expect("all done")).collect();
    let steps = ranks.first().map_or(0, |r| r.profiles.len());
    let merged = (0..steps)
        .map(|s| {
            StepProfile::from_rank_profiles(ranks.iter().map(|r| r.profiles[s].clone()).collect())
        })
        .collect();
    Ok(RunResult { ranks, merged })
}

fn read_report(conn: &mut UnixStream) -> Result<(usize, RankOutcome), ProcError> {
    let proto = |m: String| ProcError::Protocol(m);
    let (tag, hello) = read_frame(conn)?;
    if tag != ctrl::HELLO || hello.len() != 4 {
        return Err(proto(format!("control channel opened with tag {tag}")));
    }
    let rank = u32::from_le_bytes(hello.try_into().expect("4 bytes")) as usize;
    let mut outcome = RankOutcome::default();
    let mut saw_forces = false;
    let mut saw_owned = false;
    loop {
        let (tag, payload) = read_frame(conn)?;
        match tag {
            ctrl::FORCES => {
                outcome.forces = decode_forces(&payload).map_err(proto)?;
                saw_forces = true;
            }
            ctrl::OWNED => {
                outcome.owned = decode_particles(&payload).map_err(proto)?;
                saw_owned = true;
            }
            ctrl::PROFILE => {
                let text = std::str::from_utf8(&payload)
                    .map_err(|e| proto(format!("profile not utf-8: {e}")))?;
                outcome.profiles.push(StepProfile::from_json(text).map_err(proto)?);
            }
            ctrl::DONE => break,
            other => return Err(proto(format!("unexpected control tag {other}"))),
        }
    }
    if !saw_forces || !saw_owned {
        return Err(proto(format!("rank {rank} report incomplete")));
    }
    Ok((rank, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A child that exits without ever joining the mesh must surface as a
    /// named dead rank, not a hang: the parent's liveness poll catches it.
    #[test]
    fn dead_child_is_reported_not_hung() {
        let launcher = Launcher {
            program: "/bin/sh".into(),
            args: vec!["-c".into(), "exit 7".into()],
            timeout: Duration::from_secs(20),
        };
        let started = Instant::now();
        let err = launcher.run(2, &ProcConfig::default()).unwrap_err();
        match err {
            ProcError::DeadRank { detail, .. } => {
                assert!(detail.contains("before reporting"), "{detail}");
            }
            other => panic!("expected DeadRank, got {other}"),
        }
        assert!(started.elapsed() < Duration::from_secs(15), "parent waited out the deadline");
    }

    /// A child that never connects *and* never exits trips the deadline
    /// with the missing ranks named; the parent then kills it.
    #[test]
    fn wedged_child_trips_the_deadline() {
        // Spawn `sleep` directly (not via `sh -c`, which may fork and leave
        // an orphan holding the test harness's output pipe after the kill).
        let launcher = Launcher {
            program: "/bin/sleep".into(),
            args: vec!["600".into()],
            timeout: Duration::from_millis(300),
        };
        let err = launcher.run(1, &ProcConfig::default()).unwrap_err();
        match err {
            ProcError::DeadRank { rank: 0, detail } => {
                assert!(detail.contains("no report"), "{detail}");
            }
            other => panic!("expected deadline DeadRank, got {other}"),
        }
    }
}
