//! Deterministic fault injection for the multi-process runtime.
//!
//! A [`FaultPlan`] is a seeded, explicit list of [`FaultAction`]s — kill a
//! rank at a step boundary, wedge a read, delay or drop a message — each
//! pinned to a rank, a recovery attempt, and a [`Trigger`] (step boundary,
//! n-th collective of a given name, or n-th transport operation). The plan
//! is installed as a [`FaultyTransport`] wrapper around any
//! [`Transport`], so the *same* injection machinery drives loopback unit
//! tests (faults surface as [`ProcError::Injected`] and the dropped
//! transport unblocks peers) and real `SocketMesh` child processes (a kill
//! is a genuine `process::exit`, shipped to the child through the launch
//! environment next to the config).
//!
//! Determinism contract: triggers count protocol events (steps,
//! collectives, point-to-point operations), never wall-clock, so a plan
//! replays identically on every run of the same configuration. The `seed`
//! only feeds [`FaultPlan::random`], which synthesizes a plan
//! deterministically from it.

use crate::transport::{ProcError, Transport};
use bhut_obs::FaultCounters;
use std::time::Duration;

/// What the injected fault does when its trigger fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Terminate the rank: `process::exit` in a child process
    /// ([`FaultMode::Exit`]), an [`ProcError::Injected`] error (and the
    /// transport drop that follows) in-process ([`FaultMode::Error`]).
    Kill,
    /// Stop draining the stream: sleep `ms` before the next receive, so
    /// peers observe a wedged rank (their read deadlines fire).
    WedgeRecv { ms: u64 },
    /// Sleep `ms` at the trigger point — a slow link, not a failure.
    Delay { ms: u64 },
    /// Silently skip the next send; the peer's receive times out.
    DropSend,
}

/// When the fault fires. All triggers are protocol-event counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// At the start of time-step `s` (before its first collective).
    Step(u64),
    /// Immediately before the `nth` (0-based) collective named `name`
    /// (`broadcast`, `all_gather`, `all_reduce`, `reduce`, `exchange`,
    /// `barrier`).
    Collective { name: String, nth: u64 },
    /// Immediately before the `nth` (0-based) point-to-point operation
    /// (sends and receives share one counter).
    Op(u64),
}

/// One injected fault: who, when (which recovery attempt and trigger), what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultAction {
    /// Rank the fault is injected into.
    pub rank: usize,
    /// Recovery attempt the fault applies to (0 = the initial launch).
    /// Respawned meshes get the next attempt's actions, so a kill does not
    /// re-fire on the rank that replaced its victim.
    pub attempt: u32,
    pub trigger: Trigger,
    pub kind: FaultKind,
}

/// A deterministic, seeded fault schedule for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was synthesized from (0 for hand-written plans).
    pub seed: u64,
    pub actions: Vec<FaultAction>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// One kill at a step boundary.
    pub fn kill_at_step(rank: usize, step: u64) -> FaultPlan {
        FaultPlan {
            seed: 0,
            actions: vec![FaultAction {
                rank,
                attempt: 0,
                trigger: Trigger::Step(step),
                kind: FaultKind::Kill,
            }],
        }
    }

    /// One wedged read at a step boundary: the rank sleeps `ms` before its
    /// next receive, so its peers' read deadlines fire first.
    pub fn wedge_at_step(rank: usize, step: u64, ms: u64) -> FaultPlan {
        FaultPlan {
            seed: 0,
            actions: vec![FaultAction {
                rank,
                attempt: 0,
                trigger: Trigger::Step(step),
                kind: FaultKind::WedgeRecv { ms },
            }],
        }
    }

    /// Synthesize a single-kill plan deterministically from `seed`: some
    /// rank dies at some interior step (never step 0, so the run is
    /// genuinely mid-flight). Same seed, same plan — chaos runs replay.
    pub fn random(seed: u64, ranks: usize, steps: u64) -> FaultPlan {
        assert!(ranks >= 1);
        let mut s = seed;
        let rank = (splitmix(&mut s) % ranks as u64) as usize;
        let step = if steps <= 1 { 0 } else { 1 + splitmix(&mut s) % (steps - 1) };
        FaultPlan {
            seed,
            actions: vec![FaultAction {
                rank,
                attempt: 0,
                trigger: Trigger::Step(step),
                kind: FaultKind::Kill,
            }],
        }
    }

    /// The actions rank `rank` executes on recovery attempt `attempt`.
    pub fn actions_for(&self, rank: usize, attempt: u32) -> Vec<FaultAction> {
        self.actions.iter().filter(|a| a.rank == rank && a.attempt == attempt).cloned().collect()
    }

    /// Exact textual encoding for the parent→child environment hop
    /// (mirrors `ProcConfig::encode`): actions joined by `|`, fields by
    /// `,`.
    pub fn encode(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for a in &self.actions {
            let at = match &a.trigger {
                Trigger::Step(s) => format!("step:{s}"),
                Trigger::Collective { name, nth } => format!("coll:{name}:{nth}"),
                Trigger::Op(k) => format!("op:{k}"),
            };
            let what = match &a.kind {
                FaultKind::Kill => "kill".to_string(),
                FaultKind::WedgeRecv { ms } => format!("wedge:{ms}"),
                FaultKind::Delay { ms } => format!("delay:{ms}"),
                FaultKind::DropSend => "drop".to_string(),
            };
            out.push_str(&format!("|rank={},attempt={},at={at},do={what}", a.rank, a.attempt));
        }
        out
    }

    pub fn decode(s: &str) -> Result<FaultPlan, String> {
        let mut parts = s.split('|');
        let head = parts.next().ok_or("empty fault plan")?;
        let seed = head
            .strip_prefix("seed=")
            .ok_or_else(|| format!("fault plan must start with seed=, got {head:?}"))?
            .parse::<u64>()
            .map_err(|e| format!("seed: {e}"))?;
        let mut actions = Vec::new();
        for part in parts {
            let mut rank = None;
            let mut attempt = 0u32;
            let mut trigger = None;
            let mut kind = None;
            for kv in part.split(',') {
                let (k, v) = kv.split_once('=').ok_or_else(|| format!("bad field {kv:?}"))?;
                match k {
                    "rank" => rank = Some(v.parse().map_err(|e| format!("rank: {e}"))?),
                    "attempt" => attempt = v.parse().map_err(|e| format!("attempt: {e}"))?,
                    "at" => {
                        let mut bits = v.split(':');
                        trigger = Some(match bits.next() {
                            Some("step") => Trigger::Step(
                                bits.next()
                                    .ok_or("step trigger needs a value")?
                                    .parse()
                                    .map_err(|e| format!("step: {e}"))?,
                            ),
                            Some("coll") => Trigger::Collective {
                                name: bits.next().ok_or("collective trigger needs a name")?.into(),
                                nth: bits
                                    .next()
                                    .ok_or("collective trigger needs an index")?
                                    .parse()
                                    .map_err(|e| format!("nth: {e}"))?,
                            },
                            Some("op") => Trigger::Op(
                                bits.next()
                                    .ok_or("op trigger needs a value")?
                                    .parse()
                                    .map_err(|e| format!("op: {e}"))?,
                            ),
                            other => return Err(format!("unknown trigger {other:?}")),
                        });
                    }
                    "do" => {
                        let mut bits = v.split(':');
                        kind = Some(match bits.next() {
                            Some("kill") => FaultKind::Kill,
                            Some("wedge") => FaultKind::WedgeRecv {
                                ms: bits
                                    .next()
                                    .ok_or("wedge needs ms")?
                                    .parse()
                                    .map_err(|e| format!("wedge ms: {e}"))?,
                            },
                            Some("delay") => FaultKind::Delay {
                                ms: bits
                                    .next()
                                    .ok_or("delay needs ms")?
                                    .parse()
                                    .map_err(|e| format!("delay ms: {e}"))?,
                            },
                            Some("drop") => FaultKind::DropSend,
                            other => return Err(format!("unknown fault kind {other:?}")),
                        });
                    }
                    _ => return Err(format!("unknown field {k:?}")),
                }
            }
            actions.push(FaultAction {
                rank: rank.ok_or("action missing rank")?,
                attempt,
                trigger: trigger.ok_or("action missing trigger")?,
                kind: kind.ok_or("action missing kind")?,
            });
        }
        Ok(FaultPlan { seed, actions })
    }
}

/// How a fired kill manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Real child process: `process::exit` with the injected-fault exit
    /// code, exactly like an OOM-killed or crashed rank.
    Exit,
    /// In-process endpoint: return [`ProcError::Injected`]; the caller's
    /// transport drop then closes its mailboxes, unblocking peers.
    Error,
}

/// A [`Transport`] wrapper that executes one rank's share of a
/// [`FaultPlan`]. All higher layers see an ordinary transport; faults fire
/// from the [`Transport::on_step`] / [`Transport::on_collective`] hooks and
/// the point-to-point operation counter.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    mode: FaultMode,
    /// `(action, fired)` — each action fires at most once.
    armed: Vec<(FaultAction, bool)>,
    ops: u64,
    /// Per-collective-name invocation counts.
    colls: Vec<(String, u64)>,
    /// Pending one-shot effects set by a fired trigger.
    wedge_next_recv_ms: Option<u64>,
    drop_next_send: bool,
    pub counters: FaultCounters,
    /// Human-readable log of fired actions.
    pub fired: Vec<String>,
}

impl<T: Transport> FaultyTransport<T> {
    pub fn new(inner: T, mode: FaultMode, actions: Vec<FaultAction>) -> Self {
        FaultyTransport {
            inner,
            mode,
            armed: actions.into_iter().map(|a| (a, false)).collect(),
            ops: 0,
            colls: Vec::new(),
            wedge_next_recv_ms: None,
            drop_next_send: false,
            counters: FaultCounters::default(),
            fired: Vec::new(),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Fire every armed action whose trigger matches `here`.
    fn trip(&mut self, here: &Trigger) -> Result<(), ProcError> {
        for i in 0..self.armed.len() {
            if self.armed[i].1 || self.armed[i].0.trigger != *here {
                continue;
            }
            self.armed[i].1 = true;
            let kind = self.armed[i].0.kind.clone();
            let what = format!("{kind:?} at {here:?} on rank {}", self.inner.rank());
            self.fired.push(what.clone());
            match kind {
                FaultKind::Kill => {
                    self.counters.kills += 1;
                    match self.mode {
                        FaultMode::Exit => {
                            eprintln!("bhut-proc fault: {what}");
                            std::process::exit(ProcError::Injected(what).exit_code());
                        }
                        FaultMode::Error => return Err(ProcError::Injected(what)),
                    }
                }
                FaultKind::WedgeRecv { ms } => {
                    self.counters.wedges += 1;
                    self.wedge_next_recv_ms = Some(ms);
                }
                FaultKind::Delay { ms } => {
                    self.counters.delays += 1;
                    std::thread::sleep(Duration::from_millis(ms));
                }
                FaultKind::DropSend => {
                    // Counted when the send is actually swallowed.
                    self.drop_next_send = true;
                }
            }
        }
        Ok(())
    }

    fn next_op(&mut self) -> Result<(), ProcError> {
        let op = Trigger::Op(self.ops);
        self.ops += 1;
        self.trip(&op)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&mut self, to: usize, tag: u16, payload: &[u8]) -> Result<(), ProcError> {
        self.next_op()?;
        if self.drop_next_send {
            self.drop_next_send = false;
            self.counters.drops += 1;
            return Ok(());
        }
        self.inner.send(to, tag, payload)
    }

    fn recv(&mut self, from: usize, tag: u16) -> Result<Vec<u8>, ProcError> {
        self.next_op()?;
        if let Some(ms) = self.wedge_next_recv_ms.take() {
            std::thread::sleep(Duration::from_millis(ms));
        }
        self.inner.recv(from, tag)
    }

    fn traffic(&self) -> (u64, u64) {
        self.inner.traffic()
    }

    fn on_step(&mut self, step: u64) -> Result<(), ProcError> {
        self.trip(&Trigger::Step(step))?;
        self.inner.on_step(step)
    }

    fn on_collective(&mut self, name: &'static str) -> Result<(), ProcError> {
        let nth = match self.colls.iter_mut().find(|(n, _)| n == name) {
            Some((_, c)) => {
                let nth = *c;
                *c += 1;
                nth
            }
            None => {
                self.colls.push((name.to_string(), 1));
                0
            }
        };
        self.trip(&Trigger::Collective { name: name.to_string(), nth })?;
        self.inner.on_collective(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{all_gather, barrier};
    use crate::transport::local_mesh;

    #[test]
    fn plan_roundtrips_exactly() {
        let plan = FaultPlan {
            seed: 99,
            actions: vec![
                FaultAction {
                    rank: 2,
                    attempt: 0,
                    trigger: Trigger::Step(3),
                    kind: FaultKind::Kill,
                },
                FaultAction {
                    rank: 0,
                    attempt: 1,
                    trigger: Trigger::Collective { name: "all_gather".into(), nth: 4 },
                    kind: FaultKind::WedgeRecv { ms: 1500 },
                },
                FaultAction {
                    rank: 1,
                    attempt: 0,
                    trigger: Trigger::Op(17),
                    kind: FaultKind::Delay { ms: 5 },
                },
                FaultAction {
                    rank: 3,
                    attempt: 2,
                    trigger: Trigger::Op(0),
                    kind: FaultKind::DropSend,
                },
            ],
        };
        let back = FaultPlan::decode(&plan.encode()).unwrap();
        assert_eq!(back, plan);
        assert!(FaultPlan::decode("bogus").is_err());
        assert!(FaultPlan::decode("seed=1|rank=0,at=nope:3,do=kill").is_err());
    }

    #[test]
    fn random_plans_are_seed_deterministic_and_interior() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = FaultPlan::random(seed, 4, 6);
            let b = FaultPlan::random(seed, 4, 6);
            assert_eq!(a, b);
            assert_eq!(a.actions.len(), 1);
            assert!(a.actions[0].rank < 4);
            match a.actions[0].trigger {
                Trigger::Step(s) => assert!((1..6).contains(&s), "step {s} not interior"),
                ref other => panic!("expected step trigger, got {other:?}"),
            }
        }
        // Different seeds eventually pick different victims.
        let distinct: std::collections::BTreeSet<usize> =
            (0..32).map(|s| FaultPlan::random(s, 4, 6).actions[0].rank).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn actions_filter_by_rank_and_attempt() {
        let plan = FaultPlan {
            seed: 0,
            actions: vec![
                FaultAction {
                    rank: 1,
                    attempt: 0,
                    trigger: Trigger::Step(0),
                    kind: FaultKind::Kill,
                },
                FaultAction {
                    rank: 1,
                    attempt: 1,
                    trigger: Trigger::Step(0),
                    kind: FaultKind::DropSend,
                },
            ],
        };
        assert_eq!(plan.actions_for(1, 0).len(), 1);
        assert_eq!(plan.actions_for(1, 0)[0].kind, FaultKind::Kill);
        assert_eq!(plan.actions_for(1, 1)[0].kind, FaultKind::DropSend);
        assert!(plan.actions_for(0, 0).is_empty());
        assert!(plan.actions_for(1, 2).is_empty());
    }

    /// An in-process kill surfaces as `Injected` on the victim and unblocks
    /// every peer with `PeerClosed` — the loopback analog of a dead child.
    /// Failures cascade: a survivor may name another survivor that already
    /// aborted (because of the victim) and dropped its transport, so the
    /// invariant is "errors, names a dead peer", not "names the victim".
    #[test]
    fn simulated_kill_errors_victim_and_unblocks_peers() {
        let handles: Vec<_> = local_mesh(3)
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    t.set_recv_timeout(Duration::from_secs(10));
                    if t.rank() == 1 {
                        let actions = FaultPlan::kill_at_step(1, 0).actions_for(1, 0);
                        let mut ft = FaultyTransport::new(t, FaultMode::Error, actions);
                        let step = ft.on_step(0);
                        assert!(matches!(step, Err(ProcError::Injected(_))), "{step:?}");
                        assert_eq!(ft.counters.kills, 1);
                        return None;
                        // `ft` (and the inner transport) drop here: death.
                    }
                    Some(barrier(&mut t, 9).unwrap_err())
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for out in outcomes.into_iter().flatten() {
            assert!(matches!(out, ProcError::PeerClosed { .. }), "{out:?}");
        }
    }

    /// A dropped send never corrupts the protocol — the starved peer times
    /// out instead of reading a later frame under the wrong tag.
    #[test]
    fn dropped_send_starves_the_peer_into_a_timeout() {
        let handles: Vec<_> = local_mesh(2)
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    t.set_recv_timeout(Duration::from_millis(300));
                    if t.rank() == 0 {
                        // Drop rank 0's very first send (its all_gather
                        // contribution to rank 1).
                        let actions = vec![FaultAction {
                            rank: 0,
                            attempt: 0,
                            trigger: Trigger::Op(0),
                            kind: FaultKind::DropSend,
                        }];
                        let mut ft = FaultyTransport::new(t, FaultMode::Error, actions);
                        let r = all_gather(&mut ft, 4, b"x");
                        (ft.counters.drops, r.is_err())
                    } else {
                        let r = all_gather(&mut t, 4, b"y");
                        (0, r.is_err())
                    }
                })
            })
            .collect();
        let got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got[0].0, 1, "exactly one send dropped");
        assert!(got[1].1, "starved peer must error, not hang");
    }

    /// Delays perturb timing only: the collective still completes with the
    /// right payload, and the delay is counted.
    #[test]
    fn delay_preserves_results() {
        let handles: Vec<_> = local_mesh(2)
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    if t.rank() == 1 {
                        let actions = vec![FaultAction {
                            rank: 1,
                            attempt: 0,
                            trigger: Trigger::Collective { name: "all_gather".into(), nth: 0 },
                            kind: FaultKind::Delay { ms: 20 },
                        }];
                        let mut ft = FaultyTransport::new(t, FaultMode::Error, actions);
                        let out = all_gather(&mut ft, 4, b"b").unwrap();
                        assert_eq!(ft.counters.delays, 1);
                        out
                    } else {
                        all_gather(&mut t, 4, b"a").unwrap()
                    }
                })
            })
            .collect();
        for view in handles.into_iter().map(|h| h.join().unwrap()) {
            assert_eq!(view, vec![b"a".to_vec(), b"b".to_vec()]);
        }
    }

    /// Collective triggers count per name, so `nth` selects an exact
    /// protocol position.
    #[test]
    fn collective_trigger_counts_per_name() {
        let handles: Vec<_> = local_mesh(2)
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    t.set_recv_timeout(Duration::from_secs(5));
                    let actions = if t.rank() == 0 {
                        vec![FaultAction {
                            rank: 0,
                            attempt: 0,
                            trigger: Trigger::Collective { name: "all_gather".into(), nth: 2 },
                            kind: FaultKind::Kill,
                        }]
                    } else {
                        Vec::new()
                    };
                    let mut ft = FaultyTransport::new(t, FaultMode::Error, actions);
                    let mut completed = 0;
                    for round in 0..4u8 {
                        match all_gather(&mut ft, 4, &[round]) {
                            Ok(_) => completed += 1,
                            Err(_) => break,
                        }
                    }
                    completed
                })
            })
            .collect();
        let got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Rank 0 completes exactly two all_gathers before dying at the third.
        assert_eq!(got[0], 2);
        assert!(got[1] >= 2);
    }
}
