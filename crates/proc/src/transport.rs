//! The point-to-point message layer under the collectives.
//!
//! [`Transport`] is the one interface both backends implement, so the
//! collectives, the rank driver and every test run the same code path over
//! either:
//!
//! * [`local_mesh`] — `p` in-process endpoints joined by lock-and-condvar
//!   mailboxes. This is the loopback transport: `p = 1` is the
//!   single-process reference path of the force-equivalence gate, and
//!   multi-endpoint meshes let unit tests drive every collective from
//!   plain threads.
//! * [`SocketMesh`] — a full mesh of Unix-domain stream sockets, one
//!   framed stream per peer pair, for real OS processes. Connection setup
//!   retries with a deadline (peers bind in arbitrary order), accepts are
//!   polled against the same deadline, and reads carry a timeout so a
//!   wedged peer surfaces as [`ProcError::Timeout`] instead of a hang. A
//!   peer that dies mid-step closes its streams, which surfaces as
//!   [`ProcError::PeerClosed`] naming the rank.
//!
//! Messages between a fixed (sender, receiver) pair are FIFO; the rank
//! driver is bulk-synchronous, so a tag mismatch on receive is a protocol
//! bug and reported as [`ProcError::Protocol`], never silently skipped.

use crate::wire::{read_frame, write_frame};
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Anything that can go wrong in the distributed runtime.
#[derive(Debug)]
pub enum ProcError {
    Io(std::io::Error),
    /// A peer's stream closed (the process died or dropped its transport).
    PeerClosed {
        rank: usize,
    },
    /// A read or connection deadline expired.
    Timeout(String),
    /// Framing/tag/handshake violation — a bug, not an environment failure.
    Protocol(String),
    /// Parent-side: a child exited (or wedged) before reporting results.
    DeadRank {
        rank: usize,
        detail: String,
    },
    /// An injected fault fired on this rank (see `fault::FaultPlan`).
    Injected(String),
    /// Supervisor-side: every recovery attempt was spent and the run still
    /// failed.
    RecoveryExhausted {
        attempts: u32,
        last: String,
    },
}

impl ProcError {
    /// Distinct child-process exit code per variant, so the supervisor and
    /// CI logs can triage a dead rank from its exit status alone. The
    /// range starts at 40 to stay clear of shell/libc conventions (1,
    /// 2, 126–128+n).
    pub fn exit_code(&self) -> i32 {
        match self {
            ProcError::Io(_) => 40,
            ProcError::PeerClosed { .. } => 41,
            ProcError::Timeout(_) => 42,
            ProcError::Protocol(_) => 43,
            ProcError::DeadRank { .. } => 44,
            ProcError::Injected(_) => 45,
            ProcError::RecoveryExhausted { .. } => 46,
        }
    }

    /// Reverse of [`ProcError::exit_code`]: the failure class a child's
    /// exit status encodes, `None` for codes this crate never produces.
    pub fn classify_exit(code: i32) -> Option<&'static str> {
        match code {
            40 => Some("io"),
            41 => Some("peer-closed"),
            42 => Some("timeout"),
            43 => Some("protocol"),
            44 => Some("dead-rank"),
            45 => Some("injected-fault"),
            46 => Some("recovery-exhausted"),
            _ => None,
        }
    }
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::Io(e) => write!(f, "io error: {e}"),
            ProcError::PeerClosed { rank } => write!(f, "peer rank {rank} closed its stream"),
            ProcError::Timeout(what) => write!(f, "timed out: {what}"),
            ProcError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ProcError::DeadRank { rank, detail } => {
                write!(f, "rank {rank} died before reporting: {detail}")
            }
            ProcError::Injected(what) => write!(f, "injected fault: {what}"),
            ProcError::RecoveryExhausted { attempts, last } => {
                write!(f, "recovery exhausted after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for ProcError {}

impl From<std::io::Error> for ProcError {
    fn from(e: std::io::Error) -> Self {
        ProcError::Io(e)
    }
}

/// Point-to-point framed messaging between `size()` ranks.
pub trait Transport: Send {
    fn rank(&self) -> usize;
    fn size(&self) -> usize;
    /// Send `payload` to rank `to` under `tag`. Blocking, FIFO per pair.
    fn send(&mut self, to: usize, tag: u16, payload: &[u8]) -> Result<(), ProcError>;
    /// Receive the next frame from rank `from`; its tag must be `tag`.
    fn recv(&mut self, from: usize, tag: u16) -> Result<Vec<u8>, ProcError>;
    /// Cumulative (messages, payload bytes) sent since construction.
    fn traffic(&self) -> (u64, u64);
    /// Protocol checkpoint: the rank driver announces each time-step
    /// boundary. A no-op on real transports; the fault-injection wrapper
    /// keys step-triggered faults off it.
    fn on_step(&mut self, _step: u64) -> Result<(), ProcError> {
        Ok(())
    }
    /// Protocol checkpoint: each collective announces itself on entry. A
    /// no-op on real transports; the fault-injection wrapper keys
    /// collective-triggered faults off it.
    fn on_collective(&mut self, _name: &'static str) -> Result<(), ProcError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Loopback: in-process mailboxes.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Mailbox {
    q: Mutex<MailboxState>,
    cv: Condvar,
}

#[derive(Default)]
struct MailboxState {
    frames: VecDeque<(u16, Vec<u8>)>,
    closed: bool,
}

/// One endpoint of an in-process mesh; create with [`local_mesh`].
pub struct LocalTransport {
    rank: usize,
    p: usize,
    /// `boxes[from * p + to]`.
    boxes: Arc<Vec<Mailbox>>,
    recv_timeout: Duration,
    sent_msgs: u64,
    sent_bytes: u64,
}

/// `p` connected loopback endpoints (index = rank).
pub fn local_mesh(p: usize) -> Vec<LocalTransport> {
    assert!(p >= 1);
    let boxes = Arc::new((0..p * p).map(|_| Mailbox::default()).collect::<Vec<_>>());
    (0..p)
        .map(|rank| LocalTransport {
            rank,
            p,
            boxes: Arc::clone(&boxes),
            recv_timeout: Duration::from_secs(30),
            sent_msgs: 0,
            sent_bytes: 0,
        })
        .collect()
}

impl LocalTransport {
    /// Lower the blocking-receive deadline (tests exercising failure paths).
    pub fn set_recv_timeout(&mut self, d: Duration) {
        self.recv_timeout = d;
    }
}

impl Transport for LocalTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.p
    }

    fn send(&mut self, to: usize, tag: u16, payload: &[u8]) -> Result<(), ProcError> {
        assert!(to < self.p && to != self.rank, "send to {to} from {}", self.rank);
        let mb = &self.boxes[self.rank * self.p + to];
        let mut st = mb.q.lock().expect("mailbox poisoned");
        if st.closed {
            // The receiver dropped its endpoint — the loopback analog of a
            // write against a closed socket (EPIPE → PeerClosed).
            return Err(ProcError::PeerClosed { rank: to });
        }
        st.frames.push_back((tag, payload.to_vec()));
        self.sent_msgs += 1;
        self.sent_bytes += payload.len() as u64;
        mb.cv.notify_all();
        Ok(())
    }

    fn recv(&mut self, from: usize, tag: u16) -> Result<Vec<u8>, ProcError> {
        assert!(from < self.p && from != self.rank);
        let mb = &self.boxes[from * self.p + self.rank];
        let deadline = Instant::now() + self.recv_timeout;
        let mut st = mb.q.lock().expect("mailbox poisoned");
        loop {
            if let Some((got_tag, payload)) = st.frames.pop_front() {
                if got_tag != tag {
                    return Err(ProcError::Protocol(format!(
                        "rank {} expected tag {tag} from {from}, got {got_tag}",
                        self.rank
                    )));
                }
                return Ok(payload);
            }
            if st.closed {
                return Err(ProcError::PeerClosed { rank: from });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ProcError::Timeout(format!(
                    "rank {} waiting for tag {tag} from {from}",
                    self.rank
                )));
            }
            let (next, timed_out) =
                mb.cv.wait_timeout(st, deadline - now).expect("mailbox poisoned");
            st = next;
            let _ = timed_out;
        }
    }

    fn traffic(&self) -> (u64, u64) {
        (self.sent_msgs, self.sent_bytes)
    }
}

impl Drop for LocalTransport {
    /// Mark every mailbox this rank touches closed — outgoing, so peers
    /// blocked on a receive from it observe the death, and incoming, so
    /// peers sending to it get [`ProcError::PeerClosed`] — the loopback
    /// analog of a child process closing its sockets in both directions.
    fn drop(&mut self) {
        for peer in 0..self.p {
            if peer == self.rank {
                continue;
            }
            for mb in
                [&self.boxes[self.rank * self.p + peer], &self.boxes[peer * self.p + self.rank]]
            {
                if let Ok(mut st) = mb.q.lock() {
                    st.closed = true;
                    mb.cv.notify_all();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Socket mesh: one Unix stream per peer pair.
// ---------------------------------------------------------------------------

// The jittered-exponential retry schedule moved to the shared wire crate
// (the query server's clients use the same one); re-exported here so the
// mesh code and downstream `bhut_proc::Backoff` users are unchanged.
pub use bhut_wire::Backoff;

/// Handshake tag carrying the connector's rank.
const TAG_HELLO: u16 = 0xBEEF;

/// Full mesh of Unix-domain sockets for one rank of a multi-process run.
pub struct SocketMesh {
    rank: usize,
    p: usize,
    /// `streams[peer]`; `None` at `peer == rank`.
    streams: Vec<Option<UnixStream>>,
    sent_msgs: u64,
    sent_bytes: u64,
}

/// Socket path of `rank`'s listener inside the rendezvous directory.
pub fn mesh_path(dir: &Path, rank: usize) -> std::path::PathBuf {
    dir.join(format!("rank{rank}.sock"))
}

impl SocketMesh {
    /// Join the mesh: bind our listener, connect to every lower rank
    /// (retrying until `timeout` — they may not have bound yet), accept
    /// every higher rank (polling until `timeout`). Read timeouts are set
    /// to `timeout` on every stream, so a wedged peer becomes
    /// [`ProcError::Timeout`], not a hang.
    pub fn connect(
        dir: &Path,
        rank: usize,
        p: usize,
        timeout: Duration,
    ) -> Result<Self, ProcError> {
        assert!(rank < p);
        let deadline = Instant::now() + timeout;
        let mut streams: Vec<Option<UnixStream>> = (0..p).map(|_| None).collect();
        if p == 1 {
            return Ok(SocketMesh { rank, p, streams, sent_msgs: 0, sent_bytes: 0 });
        }

        let listener = UnixListener::bind(mesh_path(dir, rank))?;
        listener.set_nonblocking(true)?;

        // Connect downward, retrying with jittered exponential backoff
        // while the peer's listener appears (peers bind in arbitrary
        // order, so early retries are expected, not exceptional).
        #[allow(clippy::needless_range_loop)] // peer IS the protocol-ordered index
        for peer in 0..rank {
            let path = mesh_path(dir, peer);
            let mut backoff = Backoff::new((rank * p + peer) as u64);
            let stream = loop {
                match UnixStream::connect(&path) {
                    Ok(s) => break s,
                    Err(e) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(ProcError::Timeout(format!(
                                "rank {rank} connecting to rank {peer}: {e}"
                            )));
                        }
                        std::thread::sleep(backoff.next_delay(deadline - now));
                    }
                }
            };
            let mut s = stream;
            write_frame(&mut s, TAG_HELLO, &(rank as u32).to_le_bytes())?;
            streams[peer] = Some(s);
        }

        // Accept upward; the hello frame says which peer arrived.
        let mut pending = p - 1 - rank;
        let mut backoff = Backoff::new(rank as u64);
        while pending > 0 {
            match listener.accept() {
                Ok((stream, _)) => {
                    let mut s = stream;
                    s.set_nonblocking(false)?;
                    s.set_read_timeout(Some(timeout))?;
                    let (tag, payload) = read_frame(&mut s).map_err(ProcError::Io)?;
                    if tag != TAG_HELLO || payload.len() != 4 {
                        return Err(ProcError::Protocol(format!(
                            "rank {rank}: bad hello (tag {tag}, {} bytes)",
                            payload.len()
                        )));
                    }
                    let peer = u32::from_le_bytes(payload.try_into().expect("4 bytes")) as usize;
                    if peer <= rank || peer >= p || streams[peer].is_some() {
                        return Err(ProcError::Protocol(format!(
                            "rank {rank}: unexpected hello from rank {peer}"
                        )));
                    }
                    streams[peer] = Some(s);
                    pending -= 1;
                    backoff.reset();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ProcError::Timeout(format!(
                            "rank {rank} accepting {pending} more peers"
                        )));
                    }
                    std::thread::sleep(backoff.next_delay(deadline - now));
                }
                Err(e) => return Err(ProcError::Io(e)),
            }
        }

        for (peer, s) in streams.iter().enumerate() {
            if let Some(s) = s {
                s.set_read_timeout(Some(timeout))?;
                let _ = peer;
            }
        }
        Ok(SocketMesh { rank, p, streams, sent_msgs: 0, sent_bytes: 0 })
    }

    fn stream(&mut self, peer: usize) -> Result<&mut UnixStream, ProcError> {
        assert!(peer < self.p && peer != self.rank);
        self.streams[peer]
            .as_mut()
            .ok_or_else(|| ProcError::Protocol(format!("no stream to rank {peer}")))
    }
}

impl Transport for SocketMesh {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.p
    }

    fn send(&mut self, to: usize, tag: u16, payload: &[u8]) -> Result<(), ProcError> {
        let rank = self.rank;
        let len = payload.len() as u64;
        let stream = self.stream(to)?;
        write_frame(stream, tag, payload).map_err(|e| match e.kind() {
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::UnexpectedEof => {
                ProcError::PeerClosed { rank: to }
            }
            _ => {
                let _ = rank;
                ProcError::Io(e)
            }
        })?;
        self.sent_msgs += 1;
        self.sent_bytes += len;
        Ok(())
    }

    fn recv(&mut self, from: usize, tag: u16) -> Result<Vec<u8>, ProcError> {
        let rank = self.rank;
        let stream = self.stream(from)?;
        let (got_tag, payload) = read_frame(stream).map_err(|e| match e.kind() {
            ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::BrokenPipe => {
                ProcError::PeerClosed { rank: from }
            }
            ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                ProcError::Timeout(format!("rank {rank} reading tag {tag} from {from}"))
            }
            _ => ProcError::Io(e),
        })?;
        if got_tag != tag {
            return Err(ProcError::Protocol(format!(
                "rank {rank} expected tag {tag} from {from}, got {got_tag}"
            )));
        }
        Ok(payload)
    }

    fn traffic(&self) -> (u64, u64) {
        (self.sent_msgs, self.sent_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exit codes round-trip through the classifier, are pairwise
    /// distinct, and avoid the shell's reserved ranges.
    #[test]
    fn exit_codes_are_distinct_and_classifiable() {
        let errs = [
            ProcError::Io(std::io::Error::other("x")),
            ProcError::PeerClosed { rank: 1 },
            ProcError::Timeout("t".into()),
            ProcError::Protocol("p".into()),
            ProcError::DeadRank { rank: 0, detail: "d".into() },
            ProcError::Injected("kill".into()),
            ProcError::RecoveryExhausted { attempts: 2, last: "l".into() },
        ];
        let codes: Vec<i32> = errs.iter().map(ProcError::exit_code).collect();
        let distinct: std::collections::BTreeSet<i32> = codes.iter().copied().collect();
        assert_eq!(distinct.len(), errs.len(), "{codes:?}");
        for &c in &codes {
            assert!((40..=46).contains(&c));
            assert!(ProcError::classify_exit(c).is_some());
        }
        assert_eq!(ProcError::classify_exit(42), Some("timeout"));
        assert_eq!(ProcError::classify_exit(41), Some("peer-closed"));
        assert_eq!(ProcError::classify_exit(45), Some("injected-fault"));
        assert_eq!(ProcError::classify_exit(1), None);
        assert_eq!(ProcError::classify_exit(0), None);
    }

    /// Loopback death is symmetric: after a rank drops its endpoint, a
    /// peer's send to it fails with PeerClosed (like EPIPE on a socket),
    /// not silently succeeding into a mailbox nobody will read.
    #[test]
    fn send_to_dead_loopback_peer_fails() {
        let mut mesh = local_mesh(2);
        let t1 = mesh.pop().expect("endpoint 1");
        let mut t0 = mesh.pop().expect("endpoint 0");
        t0.send(1, 3, b"before death").expect("peer alive");
        drop(t1);
        match t0.send(1, 3, b"after death") {
            Err(ProcError::PeerClosed { rank: 1 }) => {}
            other => panic!("expected PeerClosed {{1}}, got {other:?}"),
        }
        // Queued frames from the dead peer are still drainable... but rank
        // 1 sent nothing, so the receive reports the closure immediately.
        match t0.recv(1, 3) {
            Err(ProcError::PeerClosed { rank: 1 }) => {}
            other => panic!("expected PeerClosed {{1}}, got {other:?}"),
        }
    }

    /// Default trait hooks are no-ops on the concrete transports.
    #[test]
    fn protocol_hooks_default_to_ok() {
        let mut t = local_mesh(1).pop().expect("endpoint");
        t.on_step(0).unwrap();
        t.on_collective("all_gather").unwrap();
    }
}
