//! The per-rank step driver: one OS process (or loopback endpoint) running
//! one of the three Grama–Kumar–Sameh formulations for real.
//!
//! Every rank executes the same bulk-synchronous loop per time-step:
//!
//! 1. **exchange** — all-gather owned particles into the canonical
//!    id-indexed array, so every rank holds an identical global state.
//! 2. **build / walk / kernel** — build the (replicated) global tree and
//!    evaluate forces for *owned* particles only, by masking the
//!    shared-memory executor with an [`ActiveSet`]. The masked evaluation
//!    is bitwise identical to the corresponding rows of a full run, which
//!    is what makes the ≤1e-12 force-equivalence gate hold exactly: a
//!    `p`-rank run and the single-process reference produce the same bits.
//! 3. **update** — leapfrog kick-drift of the owned rows.
//! 4. **load_balance** — scheme-specific reassignment (SPSA re-bins to the
//!    static gray-code owners; SPDA all-reduces measured cluster loads and
//!    re-carves the Morton runs; DPDA all-gathers measured particle
//!    weights and recomputes costzones), then a pairwise bin exchange
//!    migrates particles to their new owners.
//!
//! Each step emits a rank-local [`StepProfile`] whose spans use the real
//! phase names (`exchange`/`build`/`walk`/`kernel`/`update`/
//! `load_balance`); rank 0 of a launched run folds them into one profile
//! per step with [`StepProfile::from_rank_profiles`], landing measured
//! shares in the same table as the simulator's predictions.

use crate::ckpt::CkptStore;
use crate::collectives::{all_gather, all_reduce_sum_f64, broadcast, exchange};
use crate::transport::{ProcError, Transport};
use crate::wire::{decode_particles, decode_weights, encode_particles, encode_weights};
use bhut_core::balance::{spda_initial, spda_rebalance, spsa_assignment, Curve, Scheme};
use bhut_core::{ClusterGrid, Partition};
use bhut_geom::{plummer, Aabb, Particle, PlummerSpec, Vec3};
use bhut_obs::{now, phase, Span, StepProfile};
use bhut_sim::kick_drift_owned;
use bhut_threads::{ThreadConfig, ThreadSim};
use bhut_timestep::ActiveSet;

/// Frame tags of the rank↔rank mesh protocol.
pub mod tags {
    /// Initial conditions, rank 0 → all.
    pub const IC: u16 = 1;
    /// Per-step owned-state all-gather.
    pub const STATE: u16 = 2;
    /// SPDA per-cluster load all-reduce.
    pub const LOADS: u16 = 3;
    /// DPDA per-particle weight all-gather.
    pub const WEIGHTS: u16 = 4;
    /// Post-rebalance particle migration.
    pub const MIGRATE: u16 = 5;
}

/// One multi-process run's shared configuration. Every rank derives the
/// whole setup (IC, grid, initial ownership) deterministically from this,
/// so only the struct itself crosses the process boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcConfig {
    pub scheme: Scheme,
    pub n: usize,
    pub steps: usize,
    pub dt: f64,
    pub seed: u64,
    /// Barnes–Hut opening parameter α.
    pub alpha: f64,
    /// Softening length.
    pub eps: f64,
    /// Cluster-grid side `c` (r = c² clusters) for SPSA/SPDA.
    pub grid_c: u32,
    /// SPDA curve ordering.
    pub curve: Curve,
    /// Checkpoint root directory ([`crate::ckpt::CkptStore`] layout); `None`
    /// disables checkpointing and resume.
    pub ckpt_dir: Option<String>,
    /// Write one checkpoint epoch every this many completed steps
    /// (0 = never).
    pub ckpt_every: u64,
    /// Start from the latest complete epoch in `ckpt_dir` instead of the
    /// initial conditions (no-op when none exists).
    pub resume: bool,
}

impl Default for ProcConfig {
    fn default() -> Self {
        ProcConfig {
            scheme: Scheme::Spsa,
            n: 1000,
            steps: 2,
            dt: 1e-3,
            seed: 42,
            alpha: 0.67,
            eps: 1e-4,
            grid_c: 8,
            curve: Curve::Morton,
            ckpt_dir: None,
            ckpt_every: 0,
            resume: false,
        }
    }
}

impl ProcConfig {
    /// Exact textual encoding for the parent→child environment hop. Floats
    /// travel as hex bit patterns, so the child reconstructs the identical
    /// config — decimal formatting must never perturb the run.
    pub fn encode(&self) -> String {
        let scheme = match self.scheme {
            Scheme::Spsa => "spsa",
            Scheme::Spda => "spda",
            Scheme::Dpda => "dpda",
        };
        let curve = match self.curve {
            Curve::Morton => "morton",
            Curve::Hilbert => "hilbert",
        };
        let mut out = format!(
            "scheme={scheme};n={};steps={};dt={:016x};seed={};alpha={:016x};eps={:016x};grid_c={};curve={curve}",
            self.n,
            self.steps,
            self.dt.to_bits(),
            self.seed,
            self.alpha.to_bits(),
            self.eps.to_bits(),
            self.grid_c,
        );
        // Checkpoint fields ride at the tail so pre-fault-tolerance decoders
        // never see them on default configs; the directory travels as hex
        // bytes (paths may contain `;`/`=`/non-UTF-8-safe characters).
        out.push_str(&format!(";ckpt_every={};resume={}", self.ckpt_every, u8::from(self.resume)));
        if let Some(dir) = &self.ckpt_dir {
            out.push_str(";ckpt_dir=");
            for b in dir.as_bytes() {
                out.push_str(&format!("{b:02x}"));
            }
        }
        out
    }

    pub fn decode(s: &str) -> Result<ProcConfig, String> {
        let mut cfg = ProcConfig::default();
        for kv in s.split(';') {
            let (k, v) = kv.split_once('=').ok_or_else(|| format!("bad field {kv:?}"))?;
            let bits = || u64::from_str_radix(v, 16).map_err(|e| format!("{k}: {e}"));
            match k {
                "scheme" => {
                    cfg.scheme = match v {
                        "spsa" => Scheme::Spsa,
                        "spda" => Scheme::Spda,
                        "dpda" => Scheme::Dpda,
                        _ => return Err(format!("unknown scheme {v:?}")),
                    }
                }
                "curve" => {
                    cfg.curve = match v {
                        "morton" => Curve::Morton,
                        "hilbert" => Curve::Hilbert,
                        _ => return Err(format!("unknown curve {v:?}")),
                    }
                }
                "n" => cfg.n = v.parse().map_err(|e| format!("n: {e}"))?,
                "steps" => cfg.steps = v.parse().map_err(|e| format!("steps: {e}"))?,
                "seed" => cfg.seed = v.parse().map_err(|e| format!("seed: {e}"))?,
                "grid_c" => cfg.grid_c = v.parse().map_err(|e| format!("grid_c: {e}"))?,
                "dt" => cfg.dt = f64::from_bits(bits()?),
                "alpha" => cfg.alpha = f64::from_bits(bits()?),
                "eps" => cfg.eps = f64::from_bits(bits()?),
                "ckpt_every" => {
                    cfg.ckpt_every = v.parse().map_err(|e| format!("ckpt_every: {e}"))?
                }
                "resume" => {
                    cfg.resume = match v {
                        "0" => false,
                        "1" => true,
                        _ => return Err(format!("resume must be 0/1, got {v:?}")),
                    }
                }
                "ckpt_dir" => {
                    if v.len() % 2 != 0 {
                        return Err("ckpt_dir: odd-length hex".into());
                    }
                    let bytes: Vec<u8> = (0..v.len())
                        .step_by(2)
                        .map(|i| u8::from_str_radix(&v[i..i + 2], 16))
                        .collect::<Result<_, _>>()
                        .map_err(|e| format!("ckpt_dir: {e}"))?;
                    cfg.ckpt_dir =
                        Some(String::from_utf8(bytes).map_err(|e| format!("ckpt_dir: {e}"))?);
                }
                _ => return Err(format!("unknown field {k:?}")),
            }
        }
        Ok(cfg)
    }
}

/// Everything one rank reports back from a run.
#[derive(Debug, Clone, Default)]
pub struct RankOutcome {
    /// Final owned particles (post-update, post-migration).
    pub owned: Vec<Particle>,
    /// Last step's `(id, accel, potential)` for the particles this rank
    /// owned at evaluation time — the force-equivalence evidence.
    pub forces: Vec<(u32, Vec3, f64)>,
    /// One rank-local profile per step (span ranks are all 0; the collector
    /// rewrites them with [`StepProfile::from_rank_profiles`]).
    pub profiles: Vec<StepProfile>,
}

fn protocol(err: String) -> ProcError {
    ProcError::Protocol(err)
}

/// Assemble the canonical id-indexed global array from per-rank slices;
/// every id must appear exactly once.
fn assemble(n: usize, views: &[Vec<u8>]) -> Result<Vec<Particle>, ProcError> {
    let mut all = vec![Particle::new(0, 0.0, Vec3::ZERO, Vec3::ZERO); n];
    let mut seen = vec![false; n];
    for bytes in views {
        for p in decode_particles(bytes).map_err(protocol)? {
            let id = p.id as usize;
            if id >= n || seen[id] {
                return Err(protocol(format!("particle id {id} out of range or duplicated")));
            }
            seen[id] = true;
            all[id] = p;
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(protocol(format!("no rank owns particle {missing}")));
    }
    Ok(all)
}

/// Run the full step loop on this rank. Deterministic: the outcome is a
/// pure function of `cfg` and the transport's `(rank, size)`.
pub fn run_rank(t: &mut dyn Transport, cfg: &ProcConfig) -> Result<RankOutcome, ProcError> {
    let (rank, p) = (t.rank(), t.size());
    if cfg.scheme == Scheme::Spsa {
        assert!(p.is_power_of_two(), "SPSA requires power-of-two ranks");
    }

    // IC: rank 0 samples the Plummer sphere and broadcasts it, so the bits
    // every rank starts from are rank 0's by construction.
    let ic_bytes = (rank == 0).then(|| {
        let spec = PlummerSpec { n: cfg.n, seed: cfg.seed, ..Default::default() };
        encode_particles(&plummer(spec).particles)
    });
    let ic = decode_particles(&broadcast(t, 0, tags::IC, ic_bytes)?).map_err(protocol)?;
    let n = ic.len();

    // The cluster grid is fixed for the whole run and derived identically
    // on every rank: 4× the IC bounding cube, so drifting particles stay
    // inside (strays clamp to boundary clusters).
    let ic_cell = Aabb::bounding_cube(ic.iter().map(|q| q.pos), 1e-9)
        .ok_or_else(|| protocol("empty initial conditions".into()))?;
    let grid = ClusterGrid::new(cfg.grid_c, Aabb::cube(ic_cell.center(), ic_cell.side() * 4.0));

    let mut sim = ThreadSim::new(ThreadConfig {
        threads: 1,
        alpha: cfg.alpha,
        eps: cfg.eps,
        ..ThreadConfig::default()
    });

    // Initial ownership.
    let mut cluster_owner: Vec<usize> = match cfg.scheme {
        Scheme::Spsa => spsa_assignment(&grid, p),
        Scheme::Spda => spda_initial(&grid, p, cfg.curve),
        Scheme::Dpda => Vec::new(),
    };
    let owner_of_ic: Vec<usize> = match cfg.scheme {
        Scheme::Spsa | Scheme::Spda => {
            ic.iter().map(|q| cluster_owner[grid.cluster_of(q.pos) as usize]).collect()
        }
        Scheme::Dpda => {
            // No loads measured yet: costzones over the IC tree with zero
            // weights degenerates to equal particle counts.
            let tree = sim.build_tree(&ic);
            Partition::costzones_weighted(&tree, &vec![0.0; n], p).owner_of_particle
        }
    };
    let mut owned: Vec<Particle> =
        ic.iter().filter(|q| owner_of_ic[q.id as usize] == rank).copied().collect();

    // Resume: replace the IC-derived start with the latest complete
    // checkpoint epoch. Every rank scans before its first STATE all-gather
    // and the directory is quiescent until all ranks have done so (no epoch
    // can complete before every rank finishes a step), so all ranks agree
    // on the epoch without coordination.
    let store = cfg.ckpt_dir.as_deref().map(CkptStore::new);
    let mut start_step = 0usize;
    if cfg.resume {
        if let Some((epoch, of)) = store.as_ref().and_then(|s| s.latest_complete_epoch()) {
            let shards = store
                .as_ref()
                .expect("store exists")
                .load_epoch(epoch, of)
                .map_err(ProcError::Io)?;
            if of == p {
                // Same rank count: continue the recorded ownership exactly —
                // the resumed run is the uninterrupted run, bit for bit.
                owned = shards.into_iter().nth(rank).expect("rank < of");
            } else {
                // Rank count changed (degraded continuation): reassemble the
                // global state and re-derive ownership from the scheme's
                // initial assignment. The trajectory is ownership-independent
                // (masked force rows are bitwise equal to full-run rows and
                // every rebalance input is reduced over all particles), so
                // the state continues bit-for-bit under the new partition.
                let mut all: Vec<Particle> = shards.into_iter().flatten().collect();
                all.sort_unstable_by_key(|q| q.id);
                if all.len() != n {
                    return Err(protocol(format!(
                        "checkpoint epoch {epoch} holds {} particles, config says {n}",
                        all.len()
                    )));
                }
                let owner: Vec<usize> = match cfg.scheme {
                    Scheme::Spsa | Scheme::Spda => {
                        all.iter().map(|q| cluster_owner[grid.cluster_of(q.pos) as usize]).collect()
                    }
                    Scheme::Dpda => {
                        let tree = sim.build_tree(&all);
                        Partition::costzones_weighted(&tree, &vec![0.0; n], p).owner_of_particle
                    }
                };
                owned = all.iter().filter(|q| owner[q.id as usize] == rank).copied().collect();
            }
            start_step = epoch as usize;
        }
    }

    let mut profiles = Vec::with_capacity(cfg.steps.saturating_sub(start_step));
    let mut last_forces: Vec<(u32, Vec3, f64)> = Vec::new();

    for step in start_step..cfg.steps {
        t.on_step(step as u64)?;
        let t0 = now();
        let traffic0 = t.traffic();

        // ---- exchange: replicate the global state -----------------------
        let views = all_gather(t, tags::STATE, &encode_particles(&owned))?;
        let all = assemble(n, &views)?;
        let t_ex = now();
        let traffic_ex = t.traffic();

        // ---- build + walk + kernel: masked force evaluation -------------
        let active = if p == 1 {
            ActiveSet::all(n)
        } else {
            let mut mask = vec![false; n];
            for q in &owned {
                mask[q.id as usize] = true;
            }
            ActiveSet::from_mask(mask)
        };
        let fr = sim.compute_forces_active_profiled(&all, &active);
        let t_force = now();
        if step + 1 == cfg.steps {
            last_forces = owned
                .iter()
                .map(|q| (q.id, fr.accels[q.id as usize], fr.potentials[q.id as usize]))
                .collect();
        }

        // ---- update: leapfrog the owned rows ----------------------------
        kick_drift_owned(&mut owned, &fr.accels, cfg.dt);
        let t_upd = now();

        // ---- load_balance: scheme-specific reassignment + migration -----
        let weights = sim.work_weights().expect("weights exist after a force step");
        let new_owner: Vec<usize> = match cfg.scheme {
            Scheme::Spsa => {
                owned.iter().map(|q| cluster_owner[grid.cluster_of(q.pos) as usize]).collect()
            }
            Scheme::Spda => {
                // All ranks see the same reduced loads (folded in rank
                // order), so they carve identical Morton runs.
                let mut loads = vec![0.0f64; grid.r()];
                for q in &owned {
                    loads[grid.cluster_of(q.pos) as usize] += weights[q.id as usize] as f64;
                }
                let loads = all_reduce_sum_f64(t, tags::LOADS, &loads)?;
                cluster_owner = spda_rebalance(&grid, &loads, p, cfg.curve);
                owned.iter().map(|q| cluster_owner[grid.cluster_of(q.pos) as usize]).collect()
            }
            Scheme::Dpda => {
                // All-gather measured per-particle weights, rebuild the
                // (identical) tree, recompute costzones — every rank derives
                // the same partition from the same inputs.
                let mine: Vec<(u32, u64)> =
                    owned.iter().map(|q| (q.id, weights[q.id as usize])).collect();
                let views = all_gather(t, tags::WEIGHTS, &encode_weights(&mine))?;
                let mut w = vec![0.0f64; n];
                for bytes in &views {
                    for (id, wt) in decode_weights(bytes).map_err(protocol)? {
                        w[id as usize] = wt as f64;
                    }
                }
                let tree = sim.build_tree(&all);
                let part = Partition::costzones_weighted(&tree, &w, p);
                owned.iter().map(|q| part.owner_of_particle[q.id as usize]).collect()
            }
        };

        let mut bins: Vec<Vec<Particle>> = vec![Vec::new(); p];
        let mut keep = Vec::with_capacity(owned.len());
        for (q, &dest) in owned.iter().zip(&new_owner) {
            if dest == rank {
                keep.push(*q);
            } else {
                bins[dest].push(*q);
            }
        }
        let outgoing: Vec<Vec<u8>> = bins.iter().map(|b| encode_particles(b)).collect();
        let incoming = exchange(t, tags::MIGRATE, &outgoing)?;
        owned = keep;
        for bytes in &incoming {
            owned.extend(decode_particles(bytes).map_err(protocol)?);
        }
        let t_lb = now();
        let traffic_end = t.traffic();

        // ---- checkpoint: persist this rank's shard of epoch step+1 ------
        let epoch = step as u64 + 1;
        let mut t_ck = t_lb;
        let wrote_ckpt = match &store {
            Some(s) if cfg.ckpt_every > 0 && epoch.is_multiple_of(cfg.ckpt_every) => {
                s.write_shard(epoch, rank, p, &owned).map_err(ProcError::Io)?;
                t_ck = now();
                true
            }
            _ => false,
        };

        // ---- profile: rank-local spans in real phase names --------------
        let mut prof = StepProfile::new(1);
        prof.step = step as u64;
        prof.wall_s = t_ck - t0;
        let mut rec = |ph: &str, s: f64, e: f64, sent: u64| {
            let mut span = Span::new(0, step as u64, ph, s - t0, e - t0);
            span.sent = sent;
            prof.record(span);
        };
        rec(phase::EXCHANGE, t0, t_ex, traffic_ex.0 - traffic0.0);
        // Split the force interval by the executor's own sub-phase profile
        // (build / walk / kernel); if the clock is compiled out the totals
        // are zero and the whole interval lands under `force`.
        let sub = fr.profile.as_ref();
        let b = sub.map_or(0.0, |pr| pr.phase_total(phase::BUILD));
        let wk = sub.map_or(0.0, |pr| pr.phase_total(phase::WALK) + pr.phase_total(phase::EVAL));
        let k = sub.map_or(0.0, |pr| pr.phase_total(phase::KERNEL));
        let total = b + wk + k;
        if total > 0.0 {
            let span_len = t_force - t_ex;
            let t_b = t_ex + span_len * b / total;
            let t_w = t_b + span_len * wk / total;
            rec(phase::BUILD, t_ex, t_b, 0);
            rec(phase::WALK, t_b, t_w, 0);
            rec(phase::KERNEL, t_w, t_force, 0);
        } else {
            rec(phase::FORCE, t_ex, t_force, 0);
        }
        rec(phase::UPDATE, t_force, t_upd, 0);
        rec(phase::LOAD_BALANCE, t_upd, t_lb, traffic_end.0 - traffic_ex.0);
        if wrote_ckpt {
            rec(phase::CHECKPOINT, t_lb, t_ck, 0);
        }
        if let Some(pr) = sub {
            prof.totals = pr.totals;
        }
        prof.totals.messages = traffic_end.0 - traffic0.0;
        prof.totals.words = (traffic_end.1 - traffic0.1) / 8;
        profiles.push(prof);
    }

    // A resume can land at (or past) the final epoch, skipping the loop
    // entirely; evaluate forces for the final state anyway so the report —
    // and the force-equivalence evidence — is complete.
    if start_step >= cfg.steps && cfg.steps > 0 {
        let views = all_gather(t, tags::STATE, &encode_particles(&owned))?;
        let all = assemble(n, &views)?;
        let active = if p == 1 {
            ActiveSet::all(n)
        } else {
            let mut mask = vec![false; n];
            for q in &owned {
                mask[q.id as usize] = true;
            }
            ActiveSet::from_mask(mask)
        };
        let fr = sim.compute_forces_active_profiled(&all, &active);
        last_forces = owned
            .iter()
            .map(|q| (q.id, fr.accels[q.id as usize], fr.potentials[q.id as usize]))
            .collect();
    }

    Ok(RankOutcome { owned, forces: last_forces, profiles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::local_mesh;
    use std::collections::BTreeMap;

    fn run_scheme(scheme: Scheme, p: usize, cfg_base: ProcConfig) -> Vec<RankOutcome> {
        let cfg = ProcConfig { scheme, ..cfg_base };
        let handles: Vec<_> = local_mesh(p)
            .into_iter()
            .map(|mut t| {
                let cfg = cfg.clone();
                std::thread::spawn(move || run_rank(&mut t, &cfg).expect("rank run"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    }

    fn by_id(outcomes: &[RankOutcome]) -> (BTreeMap<u32, Particle>, BTreeMap<u32, (Vec3, f64)>) {
        let mut parts = BTreeMap::new();
        let mut forces = BTreeMap::new();
        for o in outcomes {
            for q in &o.owned {
                assert!(parts.insert(q.id, *q).is_none(), "particle {} owned twice", q.id);
            }
            for &(id, a, phi) in &o.forces {
                assert!(forces.insert(id, (a, phi)).is_none());
            }
        }
        (parts, forces)
    }

    fn small() -> ProcConfig {
        ProcConfig { n: 192, steps: 3, dt: 1e-3, seed: 7, grid_c: 4, ..ProcConfig::default() }
    }

    #[test]
    fn config_roundtrips_exactly() {
        let cfg = ProcConfig {
            scheme: Scheme::Dpda,
            n: 5000,
            steps: 4,
            dt: 0.1 + 0.2,
            seed: 99,
            alpha: 1.0 / 3.0,
            eps: 1e-4,
            grid_c: 16,
            curve: Curve::Hilbert,
            // Paths with `;`, `=`, and spaces must survive the hex hop.
            ckpt_dir: Some("/tmp/ck pt;x=1/∂".to_string()),
            ckpt_every: 2,
            resume: true,
        };
        let back = ProcConfig::decode(&cfg.encode()).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.dt.to_bits(), cfg.dt.to_bits());
        assert!(ProcConfig::decode("bogus").is_err());
        // Configs encoded before the checkpoint fields existed still decode,
        // with those fields defaulted.
        let legacy = ProcConfig::default();
        let tail = legacy.encode();
        let tail = tail.split(";ckpt_every").next().unwrap().to_string();
        let back = ProcConfig::decode(&tail).unwrap();
        assert_eq!(back, legacy);
    }

    /// Kill a rank mid-run (loopback fault injection), then resume from the
    /// last complete checkpoint epoch: the recovered run's final state and
    /// forces must be bitwise identical to the uninterrupted run — and a
    /// degraded resume at fewer ranks must match too, because the
    /// trajectory is ownership-independent.
    #[test]
    fn killed_run_resumes_from_checkpoint_bitwise() {
        use crate::fault::{FaultMode, FaultPlan, FaultyTransport};
        use std::time::Duration;

        for scheme in [Scheme::Spsa, Scheme::Spda, Scheme::Dpda] {
            let dir = std::env::temp_dir().join(format!("bhut_resume_test_{scheme:?}"));
            std::fs::remove_dir_all(&dir).ok();

            let reference = run_scheme(scheme, 4, small());
            let (ref_parts, ref_forces) = by_id(&reference);

            let cfg = ProcConfig {
                scheme,
                ckpt_dir: Some(dir.to_string_lossy().into_owned()),
                ckpt_every: 1,
                ..small()
            };

            // Attempt 0: rank 1 dies entering step 1. Every rank must
            // error out (never hang), leaving epoch 1 complete on disk.
            let plan = FaultPlan::kill_at_step(1, 1);
            let handles: Vec<_> = local_mesh(4)
                .into_iter()
                .map(|mut t| {
                    let cfg = cfg.clone();
                    let actions = plan.actions_for(t.rank(), 0);
                    std::thread::spawn(move || {
                        t.set_recv_timeout(Duration::from_secs(10));
                        let mut ft = FaultyTransport::new(t, FaultMode::Error, actions);
                        run_rank(&mut ft, &cfg)
                    })
                })
                .collect();
            for h in handles {
                assert!(h.join().expect("no panic").is_err(), "{scheme:?}: rank survived kill");
            }
            assert_eq!(
                crate::ckpt::CkptStore::new(&dir).latest_complete_epoch(),
                Some((1, 4)),
                "{scheme:?}: epoch 1 must be complete after the step-1 kill"
            );

            // Attempt 1: full-width resume — bitwise identical throughout.
            let resumed = run_scheme(scheme, 4, ProcConfig { resume: true, ..cfg.clone() });
            let (parts, forces) = by_id(&resumed);
            assert_eq!(parts.len(), small().n);
            for (id, q) in &parts {
                let r = &ref_parts[id];
                assert_eq!(q.pos.x.to_bits(), r.pos.x.to_bits(), "{scheme:?} id {id} pos.x");
                assert_eq!(q.pos.y.to_bits(), r.pos.y.to_bits());
                assert_eq!(q.pos.z.to_bits(), r.pos.z.to_bits());
                assert_eq!(q.vel.x.to_bits(), r.vel.x.to_bits());
                assert_eq!(q.vel.y.to_bits(), r.vel.y.to_bits());
                assert_eq!(q.vel.z.to_bits(), r.vel.z.to_bits());
            }
            for (id, (a, phi)) in &forces {
                let (ra, rphi) = &ref_forces[id];
                assert_eq!(a.x.to_bits(), ra.x.to_bits(), "{scheme:?} id {id} accel.x");
                assert_eq!(phi.to_bits(), rphi.to_bits());
            }

            // Degraded resume: fewer ranks re-derive ownership from the
            // checkpointed global state; the state trajectory still matches.
            let shrunk = if scheme == Scheme::Spsa { 2 } else { 3 };
            let degraded = run_scheme(scheme, shrunk, ProcConfig { resume: true, ..cfg.clone() });
            let (parts, _) = by_id(&degraded);
            assert_eq!(parts.len(), small().n, "{scheme:?}: degraded run lost particles");
            for (id, q) in &parts {
                let r = &ref_parts[id];
                assert_eq!(q.pos.x.to_bits(), r.pos.x.to_bits(), "{scheme:?} id {id} degraded");
                assert_eq!(q.vel.z.to_bits(), r.vel.z.to_bits());
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// A resume that lands at the final epoch skips the loop but still
    /// reports complete owned state (and non-empty forces).
    #[test]
    fn resume_past_the_end_still_reports() {
        let dir = std::env::temp_dir().join("bhut_resume_past_end");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = ProcConfig {
            ckpt_dir: Some(dir.to_string_lossy().into_owned()),
            ckpt_every: 1,
            ..small()
        };
        let finished = run_scheme(Scheme::Spda, 2, cfg.clone());
        let (ref_parts, _) = by_id(&finished);

        let resumed = run_scheme(Scheme::Spda, 2, ProcConfig { resume: true, ..cfg });
        let (parts, forces) = by_id(&resumed);
        assert_eq!(parts.len(), small().n);
        assert_eq!(forces.len(), small().n, "post-loop force fill must run");
        assert!(resumed.iter().all(|o| o.profiles.is_empty()), "no steps re-run");
        for (id, q) in &parts {
            assert_eq!(q.pos.x.to_bits(), ref_parts[id].pos.x.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_three_schemes_match_single_process_bitwise() {
        for scheme in [Scheme::Spsa, Scheme::Spda, Scheme::Dpda] {
            let reference = run_scheme(scheme, 1, small());
            let (ref_parts, ref_forces) = by_id(&reference);
            assert_eq!(ref_parts.len(), small().n);

            let outcomes = run_scheme(scheme, 4, small());
            let (parts, forces) = by_id(&outcomes);
            assert_eq!(parts.len(), small().n, "{scheme:?}: every particle owned once");
            for (id, q) in &parts {
                let r = &ref_parts[id];
                assert_eq!(q.pos.x.to_bits(), r.pos.x.to_bits(), "{scheme:?} id {id} pos.x");
                assert_eq!(q.pos.y.to_bits(), r.pos.y.to_bits());
                assert_eq!(q.pos.z.to_bits(), r.pos.z.to_bits());
                assert_eq!(q.vel.x.to_bits(), r.vel.x.to_bits());
                assert_eq!(q.vel.y.to_bits(), r.vel.y.to_bits());
                assert_eq!(q.vel.z.to_bits(), r.vel.z.to_bits());
            }
            for (id, (a, phi)) in &forces {
                let (ra, rphi) = &ref_forces[id];
                assert_eq!(a.x.to_bits(), ra.x.to_bits(), "{scheme:?} id {id} accel.x");
                assert_eq!(a.y.to_bits(), ra.y.to_bits());
                assert_eq!(a.z.to_bits(), ra.z.to_bits());
                assert_eq!(phi.to_bits(), rphi.to_bits());
            }
        }
    }

    #[test]
    fn multi_rank_runs_actually_distribute_work() {
        for scheme in [Scheme::Spsa, Scheme::Spda, Scheme::Dpda] {
            let outcomes = run_scheme(scheme, 4, small());
            let nonempty = outcomes.iter().filter(|o| !o.owned.is_empty()).count();
            assert!(nonempty >= 2, "{scheme:?}: work stuck on {nonempty} rank(s)");
            for o in &outcomes {
                assert_eq!(o.profiles.len(), small().steps);
                for pr in &o.profiles {
                    assert!(pr.totals.messages > 0, "{scheme:?}: no traffic recorded");
                }
            }
        }
    }

    #[test]
    fn profiles_carry_the_real_phase_vocabulary() {
        let outcomes = run_scheme(Scheme::Spda, 2, small());
        let phases = outcomes[0].profiles[0].phases();
        for must in [phase::EXCHANGE, phase::UPDATE, phase::LOAD_BALANCE] {
            assert!(phases.iter().any(|p| p == must), "missing {must} in {phases:?}");
        }
        // Folding per-rank profiles yields a grouped, normalized share
        // vector — the object the proc_compare gate consumes.
        let merged = StepProfile::from_rank_profiles(
            outcomes.iter().map(|o| o.profiles[0].clone()).collect(),
        );
        if bhut_obs::RECORDING {
            let shares = bhut_machine::PhaseShares::from_profile(&merged);
            assert!(shares.is_normalized(), "{shares:?}");
        }
    }
}
