//! Wire formats for the multi-process mesh.
//!
//! The framing and binary encodings used to live here; they are now the
//! shared [`bhut_wire`] crate (the query server speaks the same frames).
//! This module re-exports the whole surface so rank/launch/transport code
//! and downstream users keep their `bhut_proc::wire::…` paths.

pub use bhut_wire::*;
