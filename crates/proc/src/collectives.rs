//! The collective operations of the Grama–Kumar–Sameh formulations,
//! expressed over any [`Transport`].
//!
//! These are the same five communication patterns the virtual-clock
//! machine model charges for — broadcast (SPSA tree exchange), all-gather
//! (replicated-tree state assembly), reduce/all-reduce (SPDA load
//! vectors), pairwise bin exchange (particle migration) and barrier — now
//! executed for real. Each is deadlock-free over blocking point-to-point
//! sends because every symmetric pair is ordered by rank parity: the
//! lower rank sends first, the higher rank receives first.
//!
//! Determinism contract: any combining operation folds contributions in
//! **fixed rank index order** (0, 1, …, p−1), never arrival order, so the
//! result is a pure function of the inputs — the property pinned by the
//! rank-order-independence proptest in this crate.

use crate::transport::{ProcError, Transport};

/// Root's payload is delivered to every rank; returns the payload.
pub fn broadcast(
    t: &mut dyn Transport,
    root: usize,
    tag: u16,
    payload: Option<Vec<u8>>,
) -> Result<Vec<u8>, ProcError> {
    t.on_collective("broadcast")?;
    let (rank, p) = (t.rank(), t.size());
    if rank == root {
        let payload = payload.expect("root must supply the broadcast payload");
        for to in 0..p {
            if to != root {
                t.send(to, tag, &payload)?;
            }
        }
        Ok(payload)
    } else {
        t.recv(root, tag)
    }
}

/// Every rank contributes `mine`; every rank receives all contributions,
/// indexed by rank.
pub fn all_gather(t: &mut dyn Transport, tag: u16, mine: &[u8]) -> Result<Vec<Vec<u8>>, ProcError> {
    t.on_collective("all_gather")?;
    let (rank, p) = (t.rank(), t.size());
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
    out[rank] = mine.to_vec();
    for (peer, slot) in out.iter_mut().enumerate() {
        if peer == rank {
            continue;
        }
        if rank < peer {
            t.send(peer, tag, mine)?;
            *slot = t.recv(peer, tag)?;
        } else {
            *slot = t.recv(peer, tag)?;
            t.send(peer, tag, mine)?;
        }
    }
    Ok(out)
}

/// Element-wise sum of every rank's `vals` on every rank. Contributions
/// are folded in rank index order so floating-point rounding is identical
/// no matter which rank computes it or when messages arrive.
pub fn all_reduce_sum_f64(
    t: &mut dyn Transport,
    tag: u16,
    vals: &[f64],
) -> Result<Vec<f64>, ProcError> {
    t.on_collective("all_reduce")?;
    let contributions = all_gather(t, tag, &crate::wire::encode_f64s(vals))?;
    let mut acc = vec![0.0f64; vals.len()];
    for (rank, bytes) in contributions.iter().enumerate() {
        let part = crate::wire::decode_f64s(bytes)
            .map_err(|e| ProcError::Protocol(format!("rank {rank} reduce payload: {e}")))?;
        if part.len() != acc.len() {
            return Err(ProcError::Protocol(format!(
                "rank {rank} contributed {} values to a {}-wide reduction",
                part.len(),
                acc.len()
            )));
        }
        for (a, v) in acc.iter_mut().zip(&part) {
            *a += *v;
        }
    }
    Ok(acc)
}

/// Element-wise sum of every rank's `vals`, in rank index order, delivered
/// to `root` only (other ranks get their own contribution back untouched).
pub fn reduce_sum_f64(
    t: &mut dyn Transport,
    root: usize,
    tag: u16,
    vals: &[f64],
) -> Result<Vec<f64>, ProcError> {
    t.on_collective("reduce")?;
    let (rank, p) = (t.rank(), t.size());
    if rank == root {
        let mut parts: Vec<Option<Vec<f64>>> = vec![None; p];
        parts[rank] = Some(vals.to_vec());
        for (peer, slot) in parts.iter_mut().enumerate() {
            if peer == rank {
                continue;
            }
            let bytes = t.recv(peer, tag)?;
            let part = crate::wire::decode_f64s(&bytes)
                .map_err(|e| ProcError::Protocol(format!("rank {peer} reduce payload: {e}")))?;
            *slot = Some(part);
        }
        let mut acc = vec![0.0f64; vals.len()];
        for part in parts.into_iter().flatten() {
            if part.len() != acc.len() {
                return Err(ProcError::Protocol("ragged reduction".into()));
            }
            for (a, v) in acc.iter_mut().zip(&part) {
                *a += *v;
            }
        }
        Ok(acc)
    } else {
        t.send(root, tag, &crate::wire::encode_f64s(vals))?;
        Ok(vals.to_vec())
    }
}

/// Pairwise bin exchange: `outgoing[peer]` is shipped to `peer`; returns
/// the payload received from each peer (empty for self). This is the
/// particle-migration pattern after a repartition.
pub fn exchange(
    t: &mut dyn Transport,
    tag: u16,
    outgoing: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, ProcError> {
    t.on_collective("exchange")?;
    let (rank, p) = (t.rank(), t.size());
    assert_eq!(outgoing.len(), p, "one outgoing bin per rank");
    let mut incoming: Vec<Vec<u8>> = vec![Vec::new(); p];
    for peer in 0..p {
        if peer == rank {
            continue;
        }
        if rank < peer {
            t.send(peer, tag, &outgoing[peer])?;
            incoming[peer] = t.recv(peer, tag)?;
        } else {
            incoming[peer] = t.recv(peer, tag)?;
            t.send(peer, tag, &outgoing[peer])?;
        }
    }
    Ok(incoming)
}

/// Every rank blocks until all ranks have arrived.
pub fn barrier(t: &mut dyn Transport, tag: u16) -> Result<(), ProcError> {
    t.on_collective("barrier")?;
    all_gather(t, tag, &[]).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::local_mesh;
    use std::time::Duration;

    /// Run `f(rank transport)` on every endpoint concurrently; panics in
    /// any closure propagate.
    pub(crate) fn run_ranks<R: Send + 'static>(
        p: usize,
        f: impl Fn(crate::transport::LocalTransport) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let f = std::sync::Arc::new(f);
        let handles: Vec<_> = local_mesh(p)
            .into_iter()
            .map(|t| {
                let f = std::sync::Arc::clone(&f);
                std::thread::spawn(move || f(t))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    }

    #[test]
    fn broadcast_reaches_every_rank() {
        let got = run_ranks(4, |mut t| {
            let payload = (t.rank() == 2).then(|| b"state".to_vec());
            broadcast(&mut t, 2, 1, payload).unwrap()
        });
        assert!(got.iter().all(|g| g == b"state"));
    }

    #[test]
    fn all_gather_is_rank_indexed_everywhere() {
        let got = run_ranks(5, |mut t| {
            let mine = vec![t.rank() as u8; t.rank() + 1];
            all_gather(&mut t, 2, &mine).unwrap()
        });
        for view in got {
            for (rank, contribution) in view.iter().enumerate() {
                assert_eq!(contribution, &vec![rank as u8; rank + 1]);
            }
        }
    }

    #[test]
    fn all_reduce_sums_in_rank_order_on_every_rank() {
        let got = run_ranks(4, |mut t| {
            let mine = vec![t.rank() as f64, 1.0];
            all_reduce_sum_f64(&mut t, 3, &mine).unwrap()
        });
        for view in &got {
            assert_eq!(view, &vec![6.0, 4.0]);
        }
        let root_view = run_ranks(3, |mut t| {
            let mine = vec![(t.rank() + 1) as f64];
            reduce_sum_f64(&mut t, 1, 4, &mine).unwrap()
        });
        assert_eq!(root_view[1], vec![6.0]);
    }

    #[test]
    fn exchange_routes_each_bin_to_its_peer() {
        let got = run_ranks(4, |mut t| {
            let outgoing: Vec<Vec<u8>> =
                (0..4).map(|to| vec![(10 * t.rank() + to) as u8]).collect();
            exchange(&mut t, 5, &outgoing).unwrap()
        });
        for (rank, incoming) in got.iter().enumerate() {
            for (from, payload) in incoming.iter().enumerate() {
                if from == rank {
                    assert!(payload.is_empty());
                } else {
                    assert_eq!(payload, &vec![(10 * from + rank) as u8]);
                }
            }
        }
    }

    #[test]
    fn barrier_completes_and_peer_death_unblocks_waiters() {
        run_ranks(3, |mut t| barrier(&mut t, 6).unwrap());

        // Rank 2 dies before participating; ranks 0 and 1 must get a
        // PeerClosed (or timeout) error instead of hanging forever.
        let errs = run_ranks(3, |mut t| {
            t.set_recv_timeout(Duration::from_secs(5));
            if t.rank() == 2 {
                drop(t); // simulated crash
                return None;
            }
            Some(matches!(barrier(&mut t, 7).unwrap_err(), ProcError::PeerClosed { rank: 2 }))
        });
        assert_eq!(errs[0], Some(true));
        assert_eq!(errs[1], Some(true));
        assert_eq!(errs[2], None);
    }
}
