//! Peak-RSS sampling for the bench reports.
//!
//! Memory high-water marks matter as much as throughput for the
//! production-scale target (a 100M-particle step is memory-bound before it
//! is compute-bound), so every baseline report records the process peak
//! RSS next to its timing rows. On Linux this reads `VmHWM` from
//! `/proc/self/status` — the kernel-maintained high-water mark, which
//! needs no sampling thread and includes every allocation the process ever
//! made. On other platforms it reports 0 rather than guessing; gates must
//! therefore never *fail* on a zero reading.
//!
//! A malformed `VmHWM` line (kernel format drift, mangled procfs) is a
//! different situation from the line being genuinely absent: the former is
//! warned about loudly on stderr, because a silent 0 would make a memory
//! regression gate vacuously pass.

/// Extract the `VmHWM` high-water mark from a `/proc/self/status` body.
///
/// * `Ok(Some(bytes))` — the line was present and parsed;
/// * `Ok(None)` — no `VmHWM:` line at all (non-Linux-style status);
/// * `Err(msg)` — the line exists but its value did not parse, which is a
///   procfs-format surprise the caller should surface, not swallow.
fn vmhwm_bytes(status: &str) -> Result<Option<u64>, String> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let field = rest.trim().trim_end_matches("kB").trim();
            return match field.parse::<u64>() {
                Ok(kb) => Ok(Some(kb.saturating_mul(1024))),
                Err(e) => Err(format!("malformed VmHWM line {line:?}: {e}")),
            };
        }
    }
    Ok(None)
}

/// Peak resident set size of the current process in bytes; 0 when the
/// platform offers no cheap high-water mark. A present-but-unparseable
/// `VmHWM` line warns on stderr instead of silently reading as 0.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        match std::fs::read_to_string("/proc/self/status").map(|s| vmhwm_bytes(&s)) {
            Ok(Ok(Some(bytes))) => bytes,
            Ok(Ok(None)) => 0,
            Ok(Err(msg)) => {
                eprintln!("warning: peak-RSS sample unusable ({msg}); reporting 0");
                0
            }
            Err(_) => 0,
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// [`peak_rss_bytes`] in mebibytes, the unit the reports store.
pub fn peak_rss_mb() -> f64 {
    peak_rss_bytes() as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux_and_grows_monotonically() {
        let first = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(first > 0, "VmHWM readable on Linux");
            // Touch a chunk of memory; the high-water mark can only rise.
            let block = vec![1u8; 8 << 20];
            std::hint::black_box(&block);
            let after = peak_rss_bytes();
            assert!(after >= first, "high-water mark never decreases");
        } else {
            assert_eq!(first, 0);
        }
    }

    #[test]
    fn vmhwm_parses_distinguishes_absent_and_rejects_malformed() {
        // Well-formed procfs body.
        let ok = "Name:\tbench\nVmHWM:\t  123456 kB\nVmRSS:\t 99 kB\n";
        assert_eq!(vmhwm_bytes(ok), Ok(Some(123_456 * 1024)));
        // Genuinely absent (e.g. a non-Linux style status): Ok(None), not
        // an error — gates tolerate the resulting 0.
        assert_eq!(vmhwm_bytes("Name:\tbench\nVmRSS:\t 99 kB\n"), Ok(None));
        assert_eq!(vmhwm_bytes(""), Ok(None));
        // Present but mangled: a loud error, never a silent 0.
        for bad in ["VmHWM:\tpotato kB\n", "VmHWM: 12.5 kB\n", "VmHWM:\t-4 kB\n", "VmHWM:\n"] {
            let got = vmhwm_bytes(bad);
            assert!(got.is_err(), "{bad:?} must be rejected, got {got:?}");
        }
    }
}
