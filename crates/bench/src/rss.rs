//! Peak-RSS sampling for the bench reports.
//!
//! Memory high-water marks matter as much as throughput for the
//! production-scale target (a 100M-particle step is memory-bound before it
//! is compute-bound), so every baseline report records the process peak
//! RSS next to its timing rows. On Linux this reads `VmHWM` from
//! `/proc/self/status` — the kernel-maintained high-water mark, which
//! needs no sampling thread and includes every allocation the process ever
//! made. On other platforms it reports 0 rather than guessing; gates must
//! therefore never *fail* on a zero reading.

/// Peak resident set size of the current process in bytes; 0 when the
/// platform offers no cheap high-water mark.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb = rest.trim().trim_end_matches("kB").trim().parse::<u64>().unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// [`peak_rss_bytes`] in mebibytes, the unit the reports store.
pub fn peak_rss_mb() -> f64 {
    peak_rss_bytes() as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux_and_grows_monotonically() {
        let first = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(first > 0, "VmHWM readable on Linux");
            // Touch a chunk of memory; the high-water mark can only rise.
            let block = vec![1u8; 8 << 20];
            std::hint::black_box(&block);
            let after = peak_rss_bytes();
            assert!(after >= first, "high-water mark never decreases");
        } else {
            assert_eq!(first, 0);
        }
    }
}
