//! The experiment harness (system **S9**): regenerates every table and
//! figure of the paper's evaluation (§5).
//!
//! Each `table*`/`figure*` function runs the same protocol the paper
//! describes — generate the named dataset, warm the scheme up for a couple
//! of time-steps so assignments settle, then time one iteration including
//! one load-balance cycle — and returns a [`text::Table`] with the same rows
//! the paper prints. `cargo run -p bhut-bench --bin tables` drives them; the
//! Criterion benches under `benches/` cover the micro-level and ablation
//! measurements.
//!
//! Absolute numbers come from the simulated machine's cost model
//! (nCUBE2/CM5 presets); the reproduction target is the *shape*: which
//! scheme wins, how times scale with `p`, `k`, α and cluster count, where
//! efficiency rises and falls.

pub mod gate;
pub mod rss;
pub mod runner;
pub mod tables;
pub mod text;

pub use runner::{run_once, RunRecord, RunSpec, TargetMachine};
pub use text::Table;
