//! Generators for every table and figure of §5, plus the §4 analyses.
//!
//! Each function mirrors one artifact of the paper's evaluation. `scale`
//! scales the particle counts of the large `g_*`/`p_*` instances (1.0 = the
//! paper's sizes); the Table-4 irregularity family is always run at its full
//! 25 130 particles (it is small by construction).

use crate::runner::{run_once, RunSpec, TargetMachine};
use crate::text::{pct, ratio, secs, Table};
use bhut_core::balance::{spsa_assignment, Scheme};
use bhut_core::dataship::compare_shipping;
use bhut_core::domain::ClusterGrid;
use bhut_core::evalcore::{eval_owned, EvalEnv};
use bhut_core::kruskal;
use bhut_core::partition::Partition;
use bhut_geom::{dataset_scaled, ParticleSet};
use bhut_multipole::series_words_3d;
use bhut_tree::build::{build_in_cell, BuildParams};
use bhut_tree::BarnesHutMac;

/// Table 1: SPSA vs SPDA runtimes (monopole, nCUBE2, p ∈ {16, 64, 256}).
pub fn table1(scale: f64) -> Table {
    let mut t = Table::new(
        "Table 1 — SPSA vs SPDA runtimes (s), monopole, nCUBE2",
        &["problem", "alpha", "scheme", "p=16", "p=64", "p=256", "F (interactions)"],
    );
    let cases: &[(&str, f64, &[usize])] = &[
        ("g_160535", 0.67, &[16, 64, 256]),
        ("g_326214", 1.0, &[16, 64, 256]),
        ("g_657499", 1.0, &[64, 256]),
        ("g_1192768", 1.0, &[64, 256]),
    ];
    for &(name, alpha, ps) in cases {
        for scheme in [Scheme::Spsa, Scheme::Spda] {
            let mut cells = vec![name.to_string(), format!("{alpha}"), scheme.name().into()];
            let mut interactions = 0;
            for &p in &[16usize, 64, 256] {
                if ps.contains(&p) {
                    let rec = run_once(RunSpec {
                        dataset: name,
                        scale,
                        scheme,
                        p,
                        // r = 64² = 4096 ≥ p·log p at p = 256 (§4.1's rule)
                        clusters_per_axis: 64,
                        alpha,
                        ..Default::default()
                    });
                    interactions = rec.outcome.interactions;
                    cells.push(secs(rec.time()));
                } else {
                    cells.push("-".into());
                }
            }
            cells.push(format!("{:.2e}", interactions as f64));
            t.row(cells);
        }
    }
    t.note(format!("scale = {scale} of the paper's particle counts; clusters 64x64"));
    t.note("paper (full scale): SPDA beats SPSA everywhere; both scale to p=256");
    t
}

/// Table 2: runtime vs number of clusters (16², 32², 64²).
pub fn table2(scale: f64) -> Table {
    let mut t = Table::new(
        "Table 2 — runtimes (s) vs number of clusters, nCUBE2",
        &["p", "problem", "scheme", "16x16", "32x32", "64x64"],
    );
    let cases: &[(usize, &str, f64)] = &[
        (16, "g_28131", 0.67),
        (16, "g_160535", 0.67),
        (64, "g_160535", 0.67),
        (64, "g_326214", 1.0),
        (256, "g_326214", 1.0),
        (256, "g_657499", 1.0),
    ];
    for &(p, name, alpha) in cases {
        for scheme in [Scheme::Spsa, Scheme::Spda] {
            let mut cells = vec![p.to_string(), name.into(), scheme.name().into()];
            for c in [16u32, 32, 64] {
                let rec = run_once(RunSpec {
                    dataset: name,
                    scale,
                    scheme,
                    p,
                    clusters_per_axis: c,
                    alpha,
                    ..Default::default()
                });
                cells.push(secs(rec.time()));
            }
            t.row(cells);
        }
    }
    t.note("paper: more clusters usually help (better balance) until communication overhead bites");
    t
}

/// Table 3: phase breakdown at p = 256.
pub fn table3(scale: f64) -> Table {
    let mut t = Table::new(
        "Table 3 — time (s) per phase, p = 256, nCUBE2",
        &[
            "problem",
            "scheme",
            "local tree",
            "tree merge",
            "bcast",
            "force+traversal",
            "load bal",
            "total",
        ],
    );
    for name in ["g_1192768", "g_326214"] {
        for scheme in [Scheme::Spsa, Scheme::Spda] {
            let rec = run_once(RunSpec {
                dataset: name,
                scale,
                scheme,
                p: 256,
                clusters_per_axis: 32,
                alpha: 1.0,
                ..Default::default()
            });
            let ph = rec.outcome.phases;
            t.row(vec![
                name.into(),
                scheme.name().into(),
                format!("{:.4}", ph.local_tree),
                format!("{:.4}", ph.tree_merge),
                format!("{:.4}", ph.broadcast),
                secs(ph.force),
                format!("{:.4}", ph.load_balance),
                secs(ph.total),
            ]);
        }
    }
    t.note("paper: SPDA pays more in merge + balance but wins force time through balance");
    t
}

/// Table 4: speedups vs irregularity (the `s_*` family, always full size).
pub fn table4(_scale: f64) -> Table {
    let mut t = Table::new(
        "Table 4 — speedups for varying irregularity (25130 particles, alpha=0.67, SPDA)",
        &["problem", "clusters", "p=4", "p=16", "p=64", "F"],
    );
    for name in ["s_1g_a", "s_1g_b", "s_10g_a", "s_10g_b"] {
        for c in [128u32, 256] {
            let mut cells = vec![name.to_string(), format!("{c}x{c}")];
            let mut interactions = 0;
            for p in [4usize, 16, 64] {
                let rec = run_once(RunSpec {
                    dataset: name,
                    scale: 1.0,
                    scheme: Scheme::Spda,
                    p,
                    clusters_per_axis: c,
                    alpha: 0.67,
                    warmup: 2,
                    ..Default::default()
                });
                interactions = rec.outcome.interactions;
                cells.push(ratio(rec.outcome.speedup));
            }
            cells.push(format!("{:.1e}", interactions as f64));
            t.row(cells);
        }
    }
    t.note("paper: concentrated single blobs (s_1g_a) saturate early; more blobs / lower variance / more clusters help");
    t
}

/// Table 5: DPDA runtimes and efficiencies on the CM5 (degree 4, α = 0.67).
pub fn table5(scale: f64) -> Table {
    let mut t = Table::new(
        "Table 5 — DPDA on CM5: runtime (s) and efficiency (degree 4, alpha 0.67)",
        &["problem", "n", "p=64 time", "p=64 eff", "p=256 time", "p=256 eff"],
    );
    for name in ["p_63192", "g_160535", "g_326214", "p_353992"] {
        let mut cells = vec![name.to_string()];
        let mut n = 0;
        for p in [64usize, 256] {
            let rec = run_once(RunSpec {
                dataset: name,
                scale,
                scheme: Scheme::Dpda,
                p,
                alpha: 0.67,
                degree: 4,
                machine: TargetMachine::Cm5,
                warmup: 2,
                ..Default::default()
            });
            n = rec.n;
            cells.push(secs(rec.time()));
            cells.push(ratio(rec.efficiency()));
        }
        cells.insert(1, n.to_string());
        t.row(cells);
    }
    t.note("paper (full scale): efficiencies 0.76-0.89 at p=64, 0.47-0.74 at p=256, rising with n");
    t
}

/// Table 6: effect of multipole degree (3, 4, 5) on time / efficiency /
/// fractional % error.
pub fn table6(scale: f64) -> Table {
    let mut t = Table::new(
        "Table 6 — degree 3/4/5: time (s), efficiency, fractional % error (alpha 0.67, CM5, DPDA)",
        &[
            "problem", "p", "k=3 time", "k=3 eff", "k=3 err%", "k=4 time", "k=4 eff", "k=4 err%",
            "k=5 time", "k=5 eff", "k=5 err%",
        ],
    );
    let cases: &[(&str, usize)] =
        &[("p_63192", 64), ("g_160535", 64), ("g_326214", 64), ("p_353992", 256)];
    for &(name, p) in cases {
        let mut cells = vec![name.to_string(), p.to_string()];
        for degree in [3u32, 4, 5] {
            let rec = run_once(RunSpec {
                dataset: name,
                scale,
                scheme: Scheme::Dpda,
                p,
                alpha: 0.67,
                degree,
                machine: TargetMachine::Cm5,
                warmup: 2,
                error_sample: 200,
                ..Default::default()
            });
            cells.push(secs(rec.time()));
            cells.push(ratio(rec.efficiency()));
            cells.push(pct(rec.error.unwrap()));
        }
        t.row(cells);
    }
    t.note("paper: time grows ~k^2, error drops ~2x per degree, efficiency RISES with k (function shipping)");
    t
}

/// Table 7: effect of the α parameter (0.67, 0.80, 1.0) at degree 4.
pub fn table7(scale: f64) -> Table {
    let mut t = Table::new(
        "Table 7 — alpha 0.67/0.80/1.0: time (s), efficiency, fractional % error (degree 4, CM5, DPDA)",
        &["problem", "p", "a=.67 time", "a=.67 eff", "a=.67 err%", "a=.80 time", "a=.80 eff", "a=.80 err%", "a=1.0 time", "a=1.0 eff", "a=1.0 err%"],
    );
    let cases: &[(&str, usize)] =
        &[("p_63192", 64), ("g_160535", 64), ("g_326214", 64), ("p_353992", 256)];
    for &(name, p) in cases {
        let mut cells = vec![name.to_string(), p.to_string()];
        for alpha in [0.67, 0.80, 1.0] {
            let rec = run_once(RunSpec {
                dataset: name,
                scale,
                scheme: Scheme::Dpda,
                p,
                alpha,
                degree: 4,
                machine: TargetMachine::Cm5,
                warmup: 2,
                error_sample: 200,
                ..Default::default()
            });
            cells.push(secs(rec.time()));
            cells.push(ratio(rec.efficiency()));
            cells.push(pct(rec.error.unwrap()));
        }
        t.row(cells);
    }
    t.note(
        "paper: larger alpha => faster, less accurate; efficiency often rises (less communication)",
    );
    t
}

/// Figure 8: a 5000-particle Plummer sample; returns a summary table plus
/// the `x,y,z` CSV to plot.
pub fn figure8() -> (Table, String) {
    let set = dataset_scaled("p_5000", 1.0);
    let mut csv = String::from("x,y,z\n");
    for p in set.iter() {
        csv.push_str(&format!("{},{},{}\n", p.pos.x, p.pos.y, p.pos.z));
    }
    let mut t = Table::new("Figure 8 — sample Plummer distribution", &["quantity", "value"]);
    t.row(vec!["particles".into(), set.len().to_string()]);
    let radii: Vec<f64> = set.iter().map(|p| p.pos.norm()).collect();
    let mut sorted = radii.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    t.row(vec!["half-mass radius".into(), format!("{:.3}", sorted[sorted.len() / 2])]);
    t.row(vec!["max radius".into(), format!("{:.3}", sorted[sorted.len() - 1])]);
    t.note("plot the CSV (x,y projection) to reproduce the figure");
    (t, csv)
}

/// Figure 9: fractional % error and runtime vs polynomial degree (the graph
/// form of Table 6, degrees 1..6 for one instance per panel).
pub fn figure9(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 9 — error and runtime vs multipole degree (alpha 0.67, CM5, DPDA, p=64)",
        &["problem", "degree", "time (s)", "fractional err %"],
    );
    for name in ["p_63192", "g_160535"] {
        for degree in 1..=6u32 {
            let rec = run_once(RunSpec {
                dataset: name,
                scale,
                scheme: Scheme::Dpda,
                p: 64,
                alpha: 0.67,
                degree,
                machine: TargetMachine::Cm5,
                warmup: 1,
                error_sample: 200,
                ..Default::default()
            });
            t.row(vec![name.into(), degree.to_string(), secs(rec.time()), pct(rec.error.unwrap())]);
        }
    }
    t.note("paper: error decays roughly geometrically in k while runtime grows ~k^2");
    t
}

/// Build a cluster partition for analysis experiments.
fn analysis_setup(
    name: &'static str,
    scale: f64,
    c: u32,
    p: usize,
) -> (ParticleSet, ClusterGrid, bhut_tree::Tree, Partition) {
    let set = dataset_scaled(name, scale);
    let cell = set.bounding_cube().expect("non-empty dataset");
    let grid = ClusterGrid::new(c, cell);
    let tree = build_in_cell(
        &set.particles,
        cell,
        BuildParams { leaf_capacity: 8, collapse: true, min_split_level: grid.level() },
    );
    let owners = spsa_assignment(&grid, p);
    let part = Partition::from_clusters(&tree, &grid, &owners, p);
    (set, grid, tree, part)
}

/// A1 (§4.1): measured cluster-load statistics vs the Kruskal–Weiss model.
pub fn analysis_kruskal(scale: f64) -> Table {
    let mut t = Table::new(
        "Analysis A1 — Kruskal-Weiss cluster model (g_160535, p=64, alpha 0.67)",
        &[
            "clusters r",
            "mean load (flops)",
            "std",
            "predicted eff",
            "measured force imbalance",
            "r >= p log p?",
        ],
    );
    let p = 64;
    for c in [8u32, 16, 32, 64] {
        let (set, grid, tree, part) = analysis_setup("g_160535", scale, c, p);
        // Sequential per-cluster flop loads.
        let mac = BarnesHutMac::new(0.67);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: 1e-4,
            degree: 0,
        };
        let mut loads = vec![0.0f64; grid.r()];
        let mut remote = Vec::new();
        for particle in set.iter() {
            remote.clear();
            let r = eval_owned(
                &env,
                particle.pos,
                Some(particle.id),
                0,
                &vec![0i32; tree.len()],
                None,
                &mut remote,
            );
            loads[grid.cluster_of(particle.pos) as usize] += r.flops as f64;
        }
        let (mu, sigma) = kruskal::mean_std(&loads);
        let eff = kruskal::predicted_efficiency(grid.r(), p, mu.max(1e-9), sigma);
        // Measured: force-phase imbalance of an actual SPSA run.
        let rec = run_once(RunSpec {
            dataset: "g_160535",
            scale,
            scheme: Scheme::Spsa,
            p,
            clusters_per_axis: c,
            alpha: 0.67,
            ..Default::default()
        });
        let _ = part;
        t.row(vec![
            format!("{c}x{c}"),
            format!("{mu:.0}"),
            format!("{sigma:.0}"),
            ratio(eff),
            ratio(rec.outcome.imbalance),
            (grid.r() >= kruskal::min_clusters_for_balance(p)).to_string(),
        ]);
    }
    t.note("§4.1: imbalance overhead shrinks as r grows; r >= p log p suffices");
    t
}

/// A2 (§4.2): function-shipping vs data-shipping communication volume vs
/// multipole degree.
pub fn analysis_shipping(scale: f64) -> Table {
    let mut t = Table::new(
        "Analysis A2 — communication volume (words): function vs data shipping (g_160535, p=64, 32x32, alpha 0.67)",
        &["degree k", "series words/node", "function-ship words", "data-ship words", "data/function ratio"],
    );
    let (set, _grid, tree, part) = analysis_setup("g_160535", scale, 32, 64);
    let mac = BarnesHutMac::new(0.67);
    for degree in [0u32, 2, 4, 6] {
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: 1e-4,
            degree,
        };
        let cmp = compare_shipping(&env, &part, degree);
        t.row(vec![
            degree.to_string(),
            series_words_3d(degree).to_string(),
            cmp.function_words.to_string(),
            cmp.data_words.to_string(),
            format!("{:.2}", cmp.data_words as f64 / cmp.function_words.max(1) as f64),
        ]);
    }
    t.note("§4.2.1: function-shipping volume is degree-independent; data shipping grows ~k^2");
    t
}

/// Run a single named artifact. Returns rendered text (plus Figure 8's CSV).
pub fn run_artifact(which: &str, scale: f64) -> (String, Option<String>) {
    match which {
        "table1" => (table1(scale).render(), None),
        "table2" => (table2(scale).render(), None),
        "table3" => (table3(scale).render(), None),
        "table4" => (table4(scale).render(), None),
        "table5" => (table5(scale).render(), None),
        "table6" => (table6(scale).render(), None),
        "table7" => (table7(scale).render(), None),
        "figure8" => {
            let (t, csv) = figure8();
            (t.render(), Some(csv))
        }
        "figure9" => (figure9(scale).render(), None),
        "kruskal" => (analysis_kruskal(scale).render(), None),
        "shipping" => (analysis_shipping(scale).render(), None),
        other => panic!("unknown artifact {other:?}"),
    }
}

/// All artifact names, in paper order.
pub const ARTIFACTS: &[&str] = &[
    "table1", "table2", "table3", "table4", "table5", "table6", "table7", "figure8", "figure9",
    "kruskal", "shipping",
];

#[cfg(test)]
mod tests {
    use super::*;

    // Full tables are exercised by the `tables` binary and integration
    // tests; here we smoke-test the cheap ones at tiny scale.

    #[test]
    fn figure8_summary() {
        let (t, csv) = figure8();
        assert_eq!(t.rows[0][1], "5000");
        assert_eq!(csv.lines().count(), 5001);
    }

    #[test]
    fn shipping_analysis_shape() {
        let t = analysis_shipping(0.01);
        assert_eq!(t.rows.len(), 4);
        // data/function ratio strictly grows with degree
        let ratios: Vec<f64> = t.rows.iter().map(|r| r.last().unwrap().parse().unwrap()).collect();
        assert!(ratios.windows(2).all(|w| w[0] < w[1]), "{ratios:?}");
    }

    #[test]
    fn artifact_dispatch() {
        let (text, csv) = run_artifact("figure8", 1.0);
        assert!(text.contains("Figure 8"));
        assert!(csv.is_some());
    }

    #[test]
    #[should_panic(expected = "unknown artifact")]
    fn unknown_artifact_panics() {
        let _ = run_artifact("table99", 1.0);
    }
}
