//! Shared experiment protocol: dataset → warm-up iterations → one timed
//! iteration (§5.1), on a chosen simulated machine.

use bhut_core::balance::Scheme;
use bhut_core::{IterationOutcome, ParallelSim, SimConfig};
use bhut_geom::{dataset_domain, dataset_scaled, ParticleSet};
use bhut_machine::{CostModel, FatTree, Hypercube, Machine};
use bhut_tree::direct;
use rand::rngs::SmallRng;
use rand::{seq::index::sample, SeedableRng};

/// Which of the paper's two machines to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetMachine {
    /// 256-node hypercube, nCUBE2 constants (§5.1 experiments).
    Ncube2,
    /// 256-node 4-ary fat tree, CM5 constants (§5.2 experiments).
    Cm5,
}

impl TargetMachine {
    pub fn cost(&self) -> CostModel {
        match self {
            TargetMachine::Ncube2 => CostModel::ncube2(),
            TargetMachine::Cm5 => CostModel::cm5(),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            TargetMachine::Ncube2 => "nCUBE2",
            TargetMachine::Cm5 => "CM5",
        }
    }
}

/// One experiment cell.
#[derive(Debug, Clone)]
pub struct RunSpec {
    pub dataset: &'static str,
    /// Particle-count scale factor (1.0 = the paper's size).
    pub scale: f64,
    pub scheme: Scheme,
    pub p: usize,
    pub clusters_per_axis: u32,
    pub alpha: f64,
    pub degree: u32,
    pub machine: TargetMachine,
    /// Warm-up iterations before the timed one (assignments settle).
    pub warmup: usize,
    /// Compute the fractional error against direct summation on a sample of
    /// this many particles (0 = skip).
    pub error_sample: usize,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            dataset: "g_160535",
            scale: 0.02,
            scheme: Scheme::Spda,
            p: 16,
            clusters_per_axis: 16,
            alpha: 0.67,
            degree: 0,
            machine: TargetMachine::Ncube2,
            warmup: 1,
            error_sample: 0,
        }
    }
}

/// One experiment cell's results.
#[derive(Debug, Clone)]
pub struct RunRecord {
    pub spec: RunSpec,
    pub n: usize,
    pub outcome: IterationOutcome,
    /// Fractional potential error vs direct summation (if sampled).
    pub error: Option<f64>,
}

impl RunRecord {
    pub fn time(&self) -> f64 {
        self.outcome.phases.total
    }

    pub fn efficiency(&self) -> f64 {
        self.outcome.efficiency
    }
}

const EPS: f64 = 1e-4;

/// Execute one experiment cell.
pub fn run_once(spec: RunSpec) -> RunRecord {
    let set = dataset_scaled(spec.dataset, spec.scale);
    run_on_set(spec, &set)
}

/// Execute one experiment cell on an already-generated particle set.
pub fn run_on_set(spec: RunSpec, set: &ParticleSet) -> RunRecord {
    let config = SimConfig {
        scheme: spec.scheme,
        clusters_per_axis: spec.clusters_per_axis,
        alpha: spec.alpha,
        degree: spec.degree,
        eps: EPS,
        domain: dataset_domain(spec.dataset),
        ..Default::default()
    };
    let outcome = match spec.machine {
        TargetMachine::Ncube2 => {
            let machine = Machine::new(Hypercube::new(spec.p), spec.machine.cost());
            let mut sim = ParallelSim::new(machine, config);
            for _ in 0..spec.warmup {
                let _ = sim.run_iteration(&set.particles);
            }
            sim.run_iteration(&set.particles)
        }
        TargetMachine::Cm5 => {
            let machine = Machine::new(FatTree::cm5(spec.p), spec.machine.cost());
            let mut sim = ParallelSim::new(machine, config);
            for _ in 0..spec.warmup {
                let _ = sim.run_iteration(&set.particles);
            }
            sim.run_iteration(&set.particles)
        }
    };
    let error = (spec.error_sample > 0)
        .then(|| sampled_fractional_error(set, &outcome.potentials, spec.error_sample));
    RunRecord { spec, n: set.len(), outcome, error }
}

/// Fractional error `‖x_k − x‖/‖x‖` (§5.2.2) over a deterministic sample of
/// particles — direct summation over all n is `O(n²)` and only the sampled
/// targets need exact references.
pub fn sampled_fractional_error(set: &ParticleSet, potentials: &[f64], samples: usize) -> f64 {
    assert_eq!(potentials.len(), set.len());
    let mut rng = SmallRng::seed_from_u64(0x5eed);
    let m = samples.min(set.len());
    let idx = sample(&mut rng, set.len(), m);
    let mut approx = Vec::with_capacity(m);
    let mut exact = Vec::with_capacity(m);
    for i in idx {
        let p = &set.particles[i];
        approx.push(potentials[i]);
        exact.push(direct::potential_direct(&set.particles, p.pos, Some(p.id), EPS));
    }
    direct::fractional_error(&approx, &exact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_once_produces_sane_record() {
        let rec = run_once(RunSpec {
            dataset: "s_1g_b",
            scale: 0.05,
            p: 4,
            warmup: 0,
            error_sample: 50,
            ..Default::default()
        });
        assert!(rec.n > 1000);
        assert!(rec.time() > 0.0);
        assert!(rec.efficiency() > 0.0);
        let err = rec.error.unwrap();
        assert!(err > 0.0 && err < 0.2, "error {err}");
    }

    #[test]
    fn cm5_and_ncube2_differ_in_time() {
        let base =
            RunSpec { dataset: "s_10g_b", scale: 0.05, p: 16, warmup: 0, ..Default::default() };
        let a = run_once(RunSpec { machine: TargetMachine::Ncube2, ..base.clone() });
        let b = run_once(RunSpec { machine: TargetMachine::Cm5, ..base });
        // CM5 constants are faster across the board.
        assert!(b.time() < a.time());
        // Same physics either way.
        assert_eq!(a.outcome.interactions, b.outcome.interactions);
    }

    #[test]
    fn sampled_error_is_deterministic() {
        let rec = run_once(RunSpec {
            dataset: "s_1g_a",
            scale: 0.04,
            p: 4,
            warmup: 0,
            error_sample: 30,
            ..Default::default()
        });
        let e1 =
            sampled_fractional_error(&dataset_scaled("s_1g_a", 0.04), &rec.outcome.potentials, 30);
        let e2 =
            sampled_fractional_error(&dataset_scaled("s_1g_a", 0.04), &rec.outcome.potentials, 30);
        assert_eq!(e1, e2);
    }
}
