//! Shared CI-gate plumbing for the bench binaries.
//!
//! Every perf-gate bin (`profile`, `simd`, `timestep`, `proc_compare`)
//! builds one [`GateTable`]: a named list of pass/fail checks with the
//! measured value and the limit it was held to. [`GateTable::finish`]
//! prints the table, mirrors it into `$GITHUB_STEP_SUMMARY` when running
//! under GitHub Actions (so the verdict is readable on the run page
//! without expanding logs), and exits nonzero if any check failed.
//!
//! [`require_baseline`] loads a committed baseline file and makes a
//! missing or unreadable baseline a **hard failure with an actionable
//! message** — a gate must never silently pass because the file it gates
//! against was not committed.

use std::path::Path;

/// One gate check: what was measured, what it was held to, verdict.
#[derive(Debug, Clone)]
pub struct GateRow {
    pub check: String,
    pub value: String,
    pub limit: String,
    pub pass: bool,
}

/// A named collection of gate checks with uniform reporting.
#[derive(Debug, Clone)]
pub struct GateTable {
    job: String,
    rows: Vec<GateRow>,
}

impl GateTable {
    pub fn new(job: &str) -> Self {
        GateTable { job: job.to_string(), rows: Vec::new() }
    }

    /// Record one check; returns `pass` so call sites can branch inline.
    pub fn check(&mut self, check: &str, value: String, limit: String, pass: bool) -> bool {
        self.rows.push(GateRow { check: check.to_string(), value, limit, pass });
        pass
    }

    /// An informational row that cannot fail (context for the summary).
    pub fn info(&mut self, check: &str, value: String) {
        self.rows.push(GateRow {
            check: check.to_string(),
            value,
            limit: "-".to_string(),
            pass: true,
        });
    }

    pub fn all_passed(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Print the table to stdout and append the markdown mirror to
    /// `$GITHUB_STEP_SUMMARY` if that file is writable (outside CI the
    /// variable is unset and this is stdout-only).
    pub fn publish(&self) {
        println!("gate table [{}]:", self.job);
        println!("  {:<44} {:>18} {:>18} {:>6}", "check", "value", "limit", "pass");
        for r in &self.rows {
            println!(
                "  {:<44} {:>18} {:>18} {:>6}",
                r.check,
                r.value,
                r.limit,
                if r.pass { "ok" } else { "FAIL" }
            );
        }
        if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
            let mut md = format!(
                "### {} gate: {}\n\n| check | value | limit | pass |\n|---|---|---|---|\n",
                self.job,
                if self.all_passed() { "pass" } else { "FAIL" }
            );
            for r in &self.rows {
                md.push_str(&format!(
                    "| {} | {} | {} | {} |\n",
                    r.check,
                    r.value,
                    r.limit,
                    if r.pass { "✅" } else { "❌" }
                ));
            }
            md.push('\n');
            if let Err(e) = append(&path, &md) {
                eprintln!("warning: cannot write step summary {path}: {e}");
            }
        }
    }

    /// Publish and exit nonzero when any check failed.
    pub fn finish(self) {
        self.publish();
        if !self.all_passed() {
            let failed: Vec<&str> =
                self.rows.iter().filter(|r| !r.pass).map(|r| r.check.as_str()).collect();
            eprintln!("GATE FAILED [{}]: {}", self.job, failed.join(", "));
            std::process::exit(1);
        }
    }
}

fn append(path: &str, text: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(text.as_bytes())
}

/// Read a committed baseline file for a `--baseline` gate. Missing or
/// unreadable is a hard failure: the message names the file, states that
/// the gate refuses to run without it, and gives the regeneration command.
pub fn require_baseline(path: &Path, regen_hint: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            let msg = format!(
                "BASELINE MISSING: cannot read {} ({e}).\n\
                 This gate requires the committed baseline file; refusing to pass without it.\n\
                 Regenerate with:\n    {regen_hint}\n\
                 then commit the updated file.",
                path.display()
            );
            eprintln!("GATE FAILED: {msg}");
            if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
                let _ = append(&summary, &format!("### gate: FAIL\n\n```\n{msg}\n```\n"));
            }
            std::process::exit(1);
        }
    }
}

/// Parse a baseline JSON payload; corrupt committed baselines fail the
/// gate with the same hard semantics as a missing file.
pub fn parse_baseline<T: serde::Deserialize>(path: &Path, text: &str) -> T {
    match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "GATE FAILED: baseline {} is unparsable ({e}); \
                 regenerate and commit it.",
                path.display()
            );
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_tracks_verdicts_and_formats_markdown() {
        let mut g = GateTable::new("demo");
        assert!(g.check("throughput", "1.0e9".into(), ">= 5.0e8".into(), true));
        g.info("n", "20000".into());
        assert!(g.all_passed());
        assert!(!g.check("accuracy", "3e-4".into(), "<= 1e-6".into(), false));
        assert!(!g.all_passed());
        // publish() must not panic with GITHUB_STEP_SUMMARY unset.
        g.publish();
    }

    #[test]
    fn step_summary_is_appended_when_env_points_at_a_file() {
        let dir = std::env::temp_dir().join(format!("bhut-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("summary.md");
        // Not thread-safe in general, but test binaries in this crate run
        // this single test touching the variable.
        std::env::set_var("GITHUB_STEP_SUMMARY", &file);
        let mut g = GateTable::new("sumdemo");
        g.check("alpha", "1".into(), "<= 2".into(), true);
        g.publish();
        g.publish(); // appends, never truncates
        std::env::remove_var("GITHUB_STEP_SUMMARY");
        let text = std::fs::read_to_string(&file).unwrap();
        assert_eq!(text.matches("### sumdemo gate: pass").count(), 2);
        assert!(text.contains("| alpha | 1 | <= 2 | ✅ |"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
