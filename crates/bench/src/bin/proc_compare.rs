//! Simulator-vs-reality comparison: run each formulation on the virtual
//! machine model *and* over real OS processes, same IC and seed, and gate
//! on how far the predicted per-phase shares land from the measured ones.
//!
//! ```text
//! cargo run --release -p bhut-bench --bin proc_compare -- \
//!     [--scheme spsa|spda|dpda|all] [--ranks 4] [--n 5000] [--steps 3] \
//!     [--out results/proc_compare.json] [--baseline results/proc_compare.json] \
//!     [--force-tol 1e-12] [--max-share-error 0.40] [--headroom 0.20]
//! ```
//!
//! Three gates per scheme, reported through one [`GateTable`]:
//!
//! 1. **Force equivalence** — every per-particle acceleration and potential
//!    from the multi-process run must sit within `--force-tol` of the
//!    single-process reference (the replicated-tree design makes the match
//!    bitwise, so the observed error is 0).
//! 2. **Prediction error cap** — the largest absolute difference between
//!    predicted and measured canonical phase shares must stay under
//!    `--max-share-error`.
//! 3. **Baseline envelope** — with `--baseline`, each scheme's prediction
//!    error may not exceed the committed baseline's by more than
//!    `--headroom` share points (a missing baseline is a hard failure).
//!
//! The child ranks of the real run re-execute this binary: [`maybe_child`]
//! is the first statement of `main`, so a rank environment diverts straight
//! into the step loop.

use bhut_bench::gate::{parse_baseline, require_baseline, GateTable};
use bhut_core::balance::Scheme;
use bhut_core::driver::{ParallelSim, SimConfig};
use bhut_geom::{plummer, PlummerSpec};
use bhut_machine::{CostModel, Hypercube, Machine, PhaseShares};
use bhut_obs::StepProfile;
use bhut_proc::{local_mesh, maybe_child, run_rank, Launcher, ProcConfig, RunResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize, Deserialize, Clone)]
struct SchemeComparison {
    scheme: String,
    ranks: usize,
    n: usize,
    steps: usize,
    /// Phase shares predicted by the virtual-clock simulator.
    predicted: PhaseShares,
    /// Phase shares measured across the real ranks' merged profiles.
    measured: PhaseShares,
    /// Per-group |predicted - measured| in `bhut_machine::GROUPS` order.
    share_errors: [f64; 4],
    /// The gated metric: max over the four groups.
    max_share_error: f64,
    /// Max |multi-process - single-process| over accelerations + potentials.
    force_max_abs_err: f64,
    wall_s: f64,
    messages: u64,
    words: u64,
}

#[derive(Serialize, Deserialize)]
struct ProcCompareReport {
    benchmark: String,
    distribution: String,
    ranks: usize,
    n: usize,
    steps: usize,
    schemes: Vec<SchemeComparison>,
}

struct Args {
    schemes: Vec<Scheme>,
    ranks: usize,
    n: usize,
    steps: usize,
    out: PathBuf,
    baseline: Option<PathBuf>,
    force_tol: f64,
    max_share_error: f64,
    headroom: f64,
    timeout_s: u64,
}

fn parse_schemes(spec: &str) -> Vec<Scheme> {
    match spec {
        "all" => vec![Scheme::Spsa, Scheme::Spda, Scheme::Dpda],
        "spsa" => vec![Scheme::Spsa],
        "spda" => vec![Scheme::Spda],
        "dpda" => vec![Scheme::Dpda],
        other => panic!("unknown scheme {other:?} (want spsa|spda|dpda|all)"),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        schemes: parse_schemes("all"),
        ranks: 4,
        n: 5_000,
        steps: 3,
        out: PathBuf::from("results/proc_compare.json"),
        baseline: None,
        force_tol: 1e-12,
        max_share_error: 0.40,
        headroom: 0.20,
        timeout_s: 120,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match arg.as_str() {
            "--scheme" => args.schemes = parse_schemes(&val("--scheme")),
            "--ranks" => args.ranks = val("--ranks").parse().expect("--ranks"),
            "--n" => args.n = val("--n").parse().expect("--n"),
            "--steps" => args.steps = val("--steps").parse().expect("--steps"),
            "--out" => args.out = PathBuf::from(val("--out")),
            "--baseline" => args.baseline = Some(PathBuf::from(val("--baseline"))),
            "--force-tol" => args.force_tol = val("--force-tol").parse().expect("--force-tol"),
            "--max-share-error" => {
                args.max_share_error = val("--max-share-error").parse().expect("--max-share-error")
            }
            "--headroom" => args.headroom = val("--headroom").parse().expect("--headroom"),
            "--timeout-s" => args.timeout_s = val("--timeout-s").parse().expect("--timeout-s"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn proc_config(scheme: Scheme, args: &Args) -> ProcConfig {
    ProcConfig { scheme, n: args.n, steps: args.steps, ..ProcConfig::default() }
}

/// Simulator prediction: one warmed-up iteration on a `ranks`-processor
/// hypercube with the same scheme parameters the real ranks use.
fn predict(scheme: Scheme, args: &Args) -> PhaseShares {
    let cfg = proc_config(scheme, args);
    let set = plummer(PlummerSpec { n: cfg.n, seed: cfg.seed, ..Default::default() });
    let machine = Machine::new(Hypercube::new(args.ranks), CostModel::ncube2());
    let mut sim = ParallelSim::new(
        machine,
        SimConfig {
            scheme,
            clusters_per_axis: cfg.grid_c,
            alpha: cfg.alpha,
            eps: cfg.eps,
            curve: cfg.curve,
            ..SimConfig::default()
        },
    );
    let _ = sim.run_iteration(&set.particles); // warm-up (§5.1 protocol)
    sim.run_iteration(&set.particles).phase_shares()
}

/// Measured shares across the steady-state steps of the merged profiles
/// (step 0 is skipped when there is a later step, mirroring the simulator's
/// warm-up iteration: first-touch tree allocation is not steady state).
fn measured_shares(merged: &[StepProfile], ranks: usize) -> PhaseShares {
    let steady: Vec<&StepProfile> =
        if merged.len() > 1 { merged[1..].iter().collect() } else { merged.iter().collect() };
    let mut combined = StepProfile::new(ranks);
    for prof in steady {
        for span in &prof.spans {
            combined.record(span.clone());
        }
    }
    PhaseShares::from_profile(&combined)
}

/// Max |multi - single| over every rank's last-step accelerations and
/// potentials, keyed by particle id against the `p = 1` reference.
fn force_error(reference: &[(u32, bhut_geom::Vec3, f64)], run: &RunResult) -> f64 {
    let by_id: BTreeMap<u32, &(u32, bhut_geom::Vec3, f64)> =
        reference.iter().map(|f| (f.0, f)).collect();
    let mut worst = 0.0f64;
    let mut seen = 0usize;
    for rank in &run.ranks {
        for (id, acc, pot) in &rank.forces {
            let (_, racc, rpot) = by_id.get(id).expect("reference force for owned particle");
            for d in [acc.x - racc.x, acc.y - racc.y, acc.z - racc.z, pot - rpot] {
                worst = worst.max(d.abs());
            }
            seen += 1;
        }
    }
    assert_eq!(seen, reference.len(), "every particle's force compared exactly once");
    worst
}

fn compare_scheme(scheme: Scheme, args: &Args) -> SchemeComparison {
    let cfg = proc_config(scheme, args);
    let name = format!("{scheme:?}").to_lowercase();

    let predicted = predict(scheme, args);

    // Single-process reference over the loopback transport: same code path
    // the children run, p = 1.
    let mut t = local_mesh(1).pop().expect("one endpoint");
    let reference = run_rank(&mut t, &cfg).expect("single-process reference");

    let launcher =
        Launcher { timeout: std::time::Duration::from_secs(args.timeout_s), ..Launcher::default() };
    let t0 = Instant::now();
    let run = launcher.run(args.ranks, &cfg).unwrap_or_else(|e| {
        eprintln!("proc_compare: {name} over {} processes failed: {e}", args.ranks);
        std::process::exit(1);
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let measured = measured_shares(&run.merged, args.ranks);
    let share_errors = predicted.abs_errors(&measured);
    let (messages, words) = run
        .merged
        .iter()
        .fold((0u64, 0u64), |(m, w), p| (m + p.totals.messages, w + p.totals.words));

    SchemeComparison {
        scheme: name,
        ranks: args.ranks,
        n: args.n,
        steps: args.steps,
        predicted,
        measured,
        share_errors,
        max_share_error: predicted.max_abs_error(&measured),
        force_max_abs_err: force_error(&reference.forces, &run),
        wall_s,
        messages,
        words,
    }
}

fn print_comparison(c: &SchemeComparison) {
    println!(
        "{} over {} processes: {:.2} s wall, {} msgs, {} words",
        c.scheme, c.ranks, c.wall_s, c.messages, c.words
    );
    println!("  {:<10} {:>10} {:>10} {:>8}", "group", "predicted", "measured", "|err|");
    for (i, group) in bhut_machine::phases::GROUPS.iter().enumerate() {
        println!(
            "  {:<10} {:>9.1}% {:>9.1}% {:>7.1}%",
            group,
            c.predicted.as_array()[i] * 100.0,
            c.measured.as_array()[i] * 100.0,
            c.share_errors[i] * 100.0
        );
    }
}

fn main() {
    maybe_child(); // child ranks of the real run divert into the step loop
    let args = parse_args();

    // Load the baseline up front so a missing file fails before the (slow)
    // runs rather than after them.
    let baseline: Option<ProcCompareReport> = args.baseline.as_ref().map(|path| {
        let text = require_baseline(
            path,
            "cargo run --release -p bhut-bench --bin proc_compare -- --out results/proc_compare.json",
        );
        parse_baseline(path, &text)
    });

    let mut gate = GateTable::new("proc-compare");
    gate.info("config", format!("ranks={} n={} steps={}", args.ranks, args.n, args.steps));

    let comparisons: Vec<SchemeComparison> =
        args.schemes.iter().map(|&s| compare_scheme(s, &args)).collect();

    for c in &comparisons {
        print_comparison(c);
        gate.check(
            &format!("{}: force vs single-process", c.scheme),
            format!("{:.1e}", c.force_max_abs_err),
            format!("<= {:.0e}", args.force_tol),
            c.force_max_abs_err <= args.force_tol,
        );
        gate.check(
            &format!("{}: max phase-share error", c.scheme),
            format!("{:.3}", c.max_share_error),
            format!("< {:.2}", args.max_share_error),
            c.max_share_error < args.max_share_error,
        );
        if let Some(base) = &baseline {
            match base.schemes.iter().find(|b| b.scheme == c.scheme) {
                Some(b) => {
                    let limit = b.max_share_error + args.headroom;
                    gate.check(
                        &format!("{}: error vs committed baseline", c.scheme),
                        format!("{:.3}", c.max_share_error),
                        format!("<= {:.3}", limit),
                        c.max_share_error <= limit,
                    );
                }
                None => {
                    gate.check(
                        &format!("{}: present in baseline", c.scheme),
                        "missing".to_string(),
                        "required".to_string(),
                        false,
                    );
                }
            }
        }
    }

    let report = ProcCompareReport {
        benchmark: "proc_compare".to_string(),
        distribution: "plummer".to_string(),
        ranks: args.ranks,
        n: args.n,
        steps: args.steps,
        schemes: comparisons,
    };
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    let json = serde_json::to_string(&report).expect("serialize report");
    bhut_sim::write_text_atomically(&args.out, &json).expect("write report");
    println!("wrote {}", args.out.display());

    gate.finish();
}
