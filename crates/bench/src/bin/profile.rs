//! Phase-level profile of the threaded executor plus the simulated schemes,
//! with an optional throughput gate against a committed baseline.
//!
//! ```text
//! cargo run --release -p bhut-bench --bin profile -- \
//!     [--n 20000] [--reps 3] [--threads T] [--out results/profile.json] \
//!     [--baseline results/profile.json] [--max-regression 1.5] [--overhead]
//! ```
//!
//! The default mode runs `--reps` profiled force evaluations of a Plummer
//! model on the shared-memory executor, prints the per-phase table from the
//! best repetition's [`StepProfile`], then runs one warmed-up iteration of
//! each simulated scheme (SPSA/SPDA/DPDA on a 16-processor hypercube) and
//! reports their Table-3 phase shares. With `--baseline` it exits nonzero
//! only when the measured interaction throughput regressed by more than
//! `--max-regression` (default 1.5×) against the baseline file — a coarse
//! gate meant to catch order-of-magnitude breakage on shared CI runners,
//! not small perf drift.
//!
//! `--overhead` instead measures the profiled path against the plain path
//! at the same `--n` and prints the relative overhead of instrumentation
//! (the acceptance bar is <2% at n = 100k).

use bhut_bench::gate::{parse_baseline, require_baseline, GateTable};
use bhut_core::balance::Scheme;
use bhut_core::driver::{ParallelSim, SimConfig};
use bhut_geom::{plummer, PlummerSpec};
use bhut_machine::{CostModel, Hypercube, Machine};
use bhut_obs::{phase, StepProfile};
use bhut_threads::{EvalMode, KernelPrecision, Partitioning, ThreadConfig, ThreadSim};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

#[derive(Serialize, Deserialize)]
struct ThreadedReport {
    n: usize,
    threads: usize,
    reps: usize,
    /// Best-of-reps wall seconds for one full force evaluation.
    best_s: f64,
    interactions: u64,
    /// The gated throughput metric.
    interactions_per_s: f64,
    imbalance: f64,
    utilization: f64,
    build_s: f64,
    walk_s: f64,
    kernel_s: f64,
    scatter_s: f64,
}

#[derive(Serialize, Deserialize)]
struct SchemeReport {
    scheme: String,
    p: usize,
    total_s: f64,
    efficiency: f64,
    local_tree_share: f64,
    tree_merge_share: f64,
    broadcast_share: f64,
    force_share: f64,
    load_balance_share: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    benchmark: String,
    distribution: String,
    threaded: ThreadedReport,
    schemes: Vec<SchemeReport>,
    /// Full span/counter profile of the best threaded repetition, in the
    /// workspace's shared span schema.
    profile: StepProfile,
    /// Process peak RSS (MiB) at report time; 0 off Linux.
    peak_rss_mb: f64,
}

struct Args {
    n: usize,
    reps: usize,
    threads: usize,
    out: PathBuf,
    baseline: Option<PathBuf>,
    max_regression: f64,
    overhead: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 20_000,
        reps: 3,
        threads: std::thread::available_parallelism().map_or(4, |c| c.get().min(8)),
        out: PathBuf::from("results/profile.json"),
        baseline: None,
        max_regression: 1.5,
        overhead: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match arg.as_str() {
            "--n" => args.n = val("--n").parse().expect("--n"),
            "--reps" => args.reps = val("--reps").parse().expect("--reps"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads"),
            "--out" => args.out = PathBuf::from(val("--out")),
            "--baseline" => args.baseline = Some(PathBuf::from(val("--baseline"))),
            "--max-regression" => {
                args.max_regression = val("--max-regression").parse().expect("--max-regression")
            }
            "--overhead" => args.overhead = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn executor(threads: usize) -> ThreadSim {
    ThreadSim::new(ThreadConfig {
        threads,
        alpha: 0.67,
        degree: 0,
        eps: 1e-4,
        leaf_capacity: 8,
        partitioning: Partitioning::MortonZones,
        eval_mode: EvalMode::Grouped,
        precision: KernelPrecision::F64,
        ..ThreadConfig::default()
    })
}

/// Best-of-`reps` profiled force evaluation; returns the threaded report
/// and the best repetition's profile.
fn run_threaded(n: usize, threads: usize, reps: usize) -> (ThreadedReport, StepProfile) {
    let set = plummer(PlummerSpec { n, ..Default::default() });
    let mut sim = executor(threads);
    let mut best_s = f64::INFINITY;
    let mut best: Option<(StepProfile, u64, f64)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut out = sim.compute_forces_profiled(&set.particles);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&out.accels);
        if dt < best_s {
            best_s = dt;
            let profile = out.profile.take().expect("profiled run yields a profile");
            best = Some((profile, out.stats.interactions(), out.imbalance()));
        }
    }
    let (profile, interactions, imbalance) = best.expect("at least one repetition");
    let report = ThreadedReport {
        n,
        threads,
        reps,
        best_s,
        interactions,
        interactions_per_s: interactions as f64 / best_s,
        imbalance,
        utilization: profile.utilization(),
        build_s: profile.phase_total(phase::BUILD),
        walk_s: profile.phase_total(phase::WALK),
        kernel_s: profile.phase_total(phase::KERNEL),
        scatter_s: profile.phase_total(phase::SCATTER),
    };
    (report, profile)
}

/// One warmed-up profiled iteration of a simulated scheme.
fn run_scheme(scheme: Scheme, n: usize) -> SchemeReport {
    let p = 16;
    let set = plummer(PlummerSpec { n, ..Default::default() });
    let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
    let mut sim =
        ParallelSim::new(machine, SimConfig { scheme, clusters_per_axis: 8, ..Default::default() });
    let _ = sim.run_iteration(&set.particles); // warm-up (§5.1 protocol)
    let out = sim.run_iteration(&set.particles);
    let prof = &out.profile;
    SchemeReport {
        scheme: format!("{scheme:?}").to_lowercase(),
        p,
        total_s: out.phases.total,
        efficiency: out.efficiency,
        local_tree_share: prof.phase_share(phase::LOCAL_TREE),
        tree_merge_share: prof.phase_share(phase::TREE_MERGE),
        broadcast_share: prof.phase_share(phase::BROADCAST),
        force_share: prof.phase_share(phase::FORCE),
        load_balance_share: prof.phase_share(phase::LOAD_BALANCE),
    }
}

/// Relative cost of the instrumented force path vs. the plain one.
fn run_overhead(n: usize, threads: usize, reps: usize) {
    let set = plummer(PlummerSpec { n, ..Default::default() });
    let mut sim = executor(threads);
    let mut plain = f64::INFINITY;
    let mut profiled = f64::INFINITY;
    // Interleave so thermal / cache drift hits both paths alike.
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(sim.compute_forces(&set.particles).accels);
        plain = plain.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        std::hint::black_box(sim.compute_forces_profiled(&set.particles).accels);
        profiled = profiled.min(t0.elapsed().as_secs_f64());
    }
    let overhead = profiled / plain - 1.0;
    println!(
        "overhead n={n} threads={threads}: plain {:.1} ms, profiled {:.1} ms, \
         overhead {:+.2}%",
        plain * 1e3,
        profiled * 1e3,
        overhead * 100.0
    );
}

fn print_phase_table(t: &ThreadedReport, profile: &StepProfile) {
    println!(
        "threaded n={} threads={}: {:.1} ms, {:.2e} interactions/s, \
         utilization {:.2}, imbalance {:.2}",
        t.n,
        t.threads,
        t.best_s * 1e3,
        t.interactions_per_s,
        t.utilization,
        t.imbalance
    );
    println!("  {:<10} {:>10} {:>7} {:>9}", "phase", "busy ms", "share", "imbalance");
    for name in profile.phases() {
        println!(
            "  {:<10} {:>10.2} {:>6.1}% {:>9.2}",
            name,
            profile.phase_total(&name) * 1e3,
            profile.phase_share(&name) * 100.0,
            profile.time_imbalance(&name)
        );
    }
}

/// Record the throughput-regression check against the committed baseline.
/// A missing or unparsable baseline is a hard failure (see `gate`).
fn check_baseline(path: &Path, current: &Report, max_regression: f64, gate: &mut GateTable) {
    let text = require_baseline(
        path,
        "cargo run --release -p bhut-bench --bin profile -- --out results/profile.json",
    );
    let baseline: Report = parse_baseline(path, &text);
    let was = baseline.threaded.interactions_per_s;
    let now = current.threaded.interactions_per_s;
    let ratio = if now > 0.0 { was / now } else { f64::INFINITY };
    println!(
        "baseline {:.2e} interactions/s, current {:.2e} ({}{:.0}% of baseline)",
        was,
        now,
        if now >= was { "+" } else { "" },
        (now / was - 1.0) * 100.0
    );
    gate.check(
        "throughput vs baseline",
        format!("{now:.2e}/s ({ratio:.2}x slower)"),
        format!("<= {max_regression:.2}x slower"),
        ratio <= max_regression,
    );
}

fn main() {
    let args = parse_args();
    if args.overhead {
        run_overhead(args.n, args.threads, args.reps.max(3));
        return;
    }

    let (threaded, profile) = run_threaded(args.n, args.threads, args.reps);
    print_phase_table(&threaded, &profile);

    let schemes: Vec<SchemeReport> = [Scheme::Spsa, Scheme::Spda, Scheme::Dpda]
        .into_iter()
        .map(|s| run_scheme(s, args.n))
        .collect();
    for s in &schemes {
        println!(
            "simulated {:<4} p={}: {:.3} s, efficiency {:.2}, force share {:.0}%, \
             balance share {:.0}%",
            s.scheme,
            s.p,
            s.total_s,
            s.efficiency,
            s.force_share * 100.0,
            s.load_balance_share * 100.0
        );
    }

    let report = Report {
        benchmark: "profile".to_string(),
        distribution: "plummer".to_string(),
        threaded,
        schemes,
        profile,
        peak_rss_mb: bhut_bench::rss::peak_rss_mb(),
    };

    let mut gate = GateTable::new("profile");
    gate.info("config", format!("n={} threads={} reps={}", args.n, args.threads, args.reps));
    gate.info("interactions/s", format!("{:.2e}", report.threaded.interactions_per_s));
    gate.info("peak_rss_mb", format!("{:.1}", report.peak_rss_mb));
    if let Some(p) = args.baseline.as_ref() {
        check_baseline(p, &report, args.max_regression, &mut gate);
    }

    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    let json = serde_json::to_string(&report).expect("serialize report");
    bhut_sim::write_text_atomically(&args.out, &json).expect("write report");
    println!("wrote {}", args.out.display());

    gate.finish();
}
