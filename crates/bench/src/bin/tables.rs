//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p bhut-bench --bin tables -- [--artifact table1,figure9,...]
//!     [--scale 0.02] [--full] [--out results/]
//! ```
//!
//! With no `--artifact`, every table, figure and analysis runs in paper
//! order. `--scale` shrinks the large instances (default 0.02 ≈ tens of
//! thousands of particles, minutes of wall-clock); `--full` runs the paper's
//! exact particle counts. Output goes to stdout and, with `--out`, to one
//! text file per artifact (plus `figure8.csv`).

use bhut_bench::tables::{run_artifact, ARTIFACTS};
use std::fs;
use std::path::PathBuf;

struct Args {
    artifacts: Vec<String>,
    scale: f64,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut artifacts = Vec::new();
    let mut scale = 0.02;
    let mut out = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--artifact" | "--table" | "--figure" | "--analysis" => {
                let v = it.next().expect("missing value");
                for a in v.split(',') {
                    // allow bare numbers after --table / --figure
                    let name = match (arg.as_str(), a.parse::<u32>()) {
                        ("--table", Ok(n)) => format!("table{n}"),
                        ("--figure", Ok(n)) => format!("figure{n}"),
                        _ => a.to_string(),
                    };
                    artifacts.push(name);
                }
            }
            "--scale" => scale = it.next().expect("missing value").parse().expect("bad scale"),
            "--full" => scale = 1.0,
            "--out" => out = Some(PathBuf::from(it.next().expect("missing value"))),
            "--help" | "-h" => {
                eprintln!(
                    "usage: tables [--artifact names] [--table N] [--figure N] \
                     [--scale F | --full] [--out DIR]\nartifacts: {ARTIFACTS:?}"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    if artifacts.is_empty() {
        artifacts = ARTIFACTS.iter().map(|s| s.to_string()).collect();
    }
    Args { artifacts, scale, out }
}

fn main() {
    let args = parse_args();
    if let Some(dir) = &args.out {
        fs::create_dir_all(dir).expect("create output dir");
    }
    println!(
        "# Barnes-Hut parallel formulations - experiment regeneration (scale = {})\n",
        args.scale
    );
    for name in &args.artifacts {
        let start = std::time::Instant::now();
        let (text, csv) = run_artifact(name, args.scale);
        println!("{text}");
        println!("[{name} regenerated in {:.1}s wall-clock]\n", start.elapsed().as_secs_f64());
        if let Some(dir) = &args.out {
            bhut_sim::write_text_atomically(&dir.join(format!("{name}.txt")), &text)
                .expect("write artifact");
            if let Some(csv) = csv {
                bhut_sim::write_text_atomically(&dir.join(format!("{name}.csv")), &csv)
                    .expect("write csv");
            }
        }
    }
}
