//! Measure grouped vs per-particle full-sweep force evaluation and write
//! the numbers to a JSON report.
//!
//! ```text
//! cargo run --release -p bhut-bench --bin group_walk -- [--out results/group_walk.json]
//! ```
//!
//! Single-threaded, Plummer distribution, α = 0.67, leaf capacity 8 — the
//! configuration the repo's acceptance numbers quote. "Per-particle" is the
//! reference path (one potential walk plus one acceleration walk per
//! particle); "grouped" is one shared walk per leaf bucket feeding the SoA
//! batched kernels, producing both quantities in a single pass.

use bhut_geom::{plummer, PlummerSpec};
use bhut_tree::build::{build, BuildParams};
use bhut_tree::group::{eval_group_monopole, leaf_schedule, InteractionBuffers};
use bhut_tree::{accel_on, potential_at, BarnesHutMac};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    n: usize,
    alpha: f64,
    leaf_capacity: usize,
    reps: usize,
    per_particle_ms: f64,
    grouped_ms: f64,
    speedup: f64,
    interactions: u64,
}

#[derive(Serialize)]
struct Report {
    benchmark: String,
    distribution: String,
    threads: usize,
    rows: Vec<Row>,
}

fn measure(n: usize, reps: usize) -> Row {
    let alpha = 0.67;
    let leaf_capacity = 8;
    let eps = 1e-4;
    let set = plummer(PlummerSpec { n, ..Default::default() });
    let tree = build(&set.particles, BuildParams::with_leaf_capacity(leaf_capacity));
    let mac = BarnesHutMac::new(alpha);

    // Best-of-`reps` full sweeps, per-particle reference path.
    let mut sink = 0.0f64;
    let mut per_particle = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for p in set.particles.iter() {
            let (phi, _) = potential_at(&tree, &set.particles, p.pos, Some(p.id), &mac, eps);
            let (acc, _) = accel_on(&tree, &set.particles, p.pos, Some(p.id), &mac, eps);
            sink += phi + acc.x;
        }
        per_particle = per_particle.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    // Best-of-`reps` full sweeps, grouped path with reused buffers.
    let leaves = leaf_schedule(&tree);
    let mut buf = InteractionBuffers::new();
    let mut grouped = f64::INFINITY;
    let mut interactions = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut total = 0u64;
        for &leaf in &leaves {
            let st = eval_group_monopole(
                &tree,
                &set.particles,
                leaf,
                &mac,
                eps,
                &mut buf,
                |_, phi, acc, _| sink += phi + acc.x,
            );
            total += st.interactions();
        }
        grouped = grouped.min(t0.elapsed().as_secs_f64() * 1e3);
        interactions = total;
    }
    std::hint::black_box(sink);

    eprintln!(
        "n = {n:>7}: per-particle {per_particle:>9.1} ms, grouped {grouped:>8.1} ms, \
         speedup {:.2}x",
        per_particle / grouped
    );
    Row {
        n,
        alpha,
        leaf_capacity,
        reps,
        per_particle_ms: per_particle,
        grouped_ms: grouped,
        speedup: per_particle / grouped,
        interactions,
    }
}

fn main() {
    let mut out = PathBuf::from("results/group_walk.json");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(it.next().expect("missing value")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    let rows = vec![measure(10_000, 5), measure(100_000, 3)];
    let report = Report {
        benchmark: "group_walk_full_sweep".to_string(),
        distribution: "plummer".to_string(),
        threads: 1,
        rows,
    };
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    let json = serde_json::to_string(&report).expect("serialize report");
    bhut_sim::write_text_atomically(&out, &json).expect("write report");
    println!("wrote {}", out.display());
}
