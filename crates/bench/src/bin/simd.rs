//! Kernel-precision ablation of the SIMD force kernels, with speedup and
//! accuracy gates.
//!
//! ```text
//! cargo run --release -p bhut-bench --bin simd -- \
//!     [--n 100000] [--reps 7] [--threads 1] [--out results/simd.json] \
//!     [--min-kernel-speedup 2.0] [--baseline results/simd.json] \
//!     [--max-regression 1.5]
//! ```
//!
//! Runs best-of-`--reps` profiled force evaluations of a Plummer model under
//! each [`KernelPrecision`] (`scalar_f64` → `f64` → `mixed_f32`) on the
//! shared-memory executor, then scores every variant's accelerations against
//! an `O(n·s)` sampled direct sum. The table this prints is the
//! precision-ablation table quoted in DESIGN.md §5.
//!
//! Gates (any failure exits nonzero after writing `--out`):
//! * `--min-kernel-speedup`: the vectorized-f64 kernel phase must beat the
//!   scalar-f64 kernel phase by at least this factor.
//! * mixed-precision accuracy: `mixed_f32`'s rms error against the direct
//!   sum must stay inside the θ-MAC envelope — the f64 tree-code's own
//!   discretization error times a small slack, plus the f32 noise floor.
//!   f32 lane roundoff must hide below the MAC error, not add to it.
//! * `--baseline`: the f64 kernel-phase throughput must not regress by more
//!   than `--max-regression` against the committed report (coarse CI gate,
//!   like the `profile` bin's).

use bhut_bench::gate::{parse_baseline, require_baseline, GateTable};
use bhut_geom::{plummer, PlummerSpec, Vec3};
use bhut_obs::{phase, StepProfile};
use bhut_threads::{EvalMode, Partitioning, ThreadConfig, ThreadSim};
use bhut_tree::direct::accel_direct;
use bhut_tree::KernelPrecision;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Multiplicative slack on the f64 tree-code error when bounding mixed_f32.
const ENVELOPE_SLACK: f64 = 1.25;
/// Additive f32 noise floor: lane roundoff on well-cancelled sums can exceed
/// a pure ~1e-7 ulp bound; 5e-6 relative is the observed ceiling at n=100k.
const F32_NOISE_FLOOR: f64 = 5e-6;

#[derive(Serialize, Deserialize)]
struct PrecisionReport {
    precision: String,
    /// Best-of-reps wall seconds for one full force evaluation.
    best_s: f64,
    build_s: f64,
    walk_s: f64,
    kernel_s: f64,
    scatter_s: f64,
    interactions: u64,
    /// Kernel-phase interaction throughput — the baseline-gated metric.
    kernel_interactions_per_s: f64,
    /// Useful-lane fraction of the padded slab slots the kernels consumed.
    lane_utilization: f64,
    /// Kernel-phase speedup over the scalar_f64 row (1.0 for that row).
    kernel_speedup: f64,
    /// Accel error vs. the sampled direct sum (relative, per target).
    rms_rel_err: f64,
    max_rel_err: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    benchmark: String,
    distribution: String,
    n: usize,
    threads: usize,
    reps: usize,
    /// Number of direct-sum reference targets sampled for the error rows.
    sample: usize,
    alpha: f64,
    eps: f64,
    /// The mixed_f32 rms error bound this run enforced.
    mixed_error_envelope: f64,
    rows: Vec<PrecisionReport>,
    /// Process peak RSS (MiB) at report time; 0 off Linux.
    peak_rss_mb: f64,
}

struct Args {
    n: usize,
    reps: usize,
    threads: usize,
    out: PathBuf,
    min_kernel_speedup: f64,
    baseline: Option<PathBuf>,
    max_regression: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 100_000,
        reps: 7,
        threads: 1,
        out: PathBuf::from("results/simd.json"),
        min_kernel_speedup: 0.0,
        baseline: None,
        max_regression: 1.5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match arg.as_str() {
            "--n" => args.n = val("--n").parse().expect("--n"),
            "--reps" => args.reps = val("--reps").parse().expect("--reps"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads"),
            "--out" => args.out = PathBuf::from(val("--out")),
            "--min-kernel-speedup" => {
                args.min_kernel_speedup =
                    val("--min-kernel-speedup").parse().expect("--min-kernel-speedup")
            }
            "--baseline" => args.baseline = Some(PathBuf::from(val("--baseline"))),
            "--max-regression" => {
                args.max_regression = val("--max-regression").parse().expect("--max-regression")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

const ALPHA: f64 = 0.67;
const EPS: f64 = 1e-4;

fn executor(threads: usize, precision: KernelPrecision) -> ThreadSim {
    ThreadSim::new(ThreadConfig {
        threads,
        alpha: ALPHA,
        degree: 0,
        eps: EPS,
        leaf_capacity: 8,
        partitioning: Partitioning::MortonZones,
        eval_mode: EvalMode::Grouped,
        precision,
        ..ThreadConfig::default()
    })
}

/// Best-of-`reps` profiled force evaluation under one precision; returns the
/// best repetition's profile, wall time, interactions, and accelerations.
fn run_precision(
    set: &bhut_geom::ParticleSet,
    threads: usize,
    reps: usize,
    precision: KernelPrecision,
) -> (StepProfile, f64, u64, Vec<Vec3>) {
    let mut sim = executor(threads, precision);
    let mut best_s = f64::INFINITY;
    let mut best: Option<(StepProfile, u64, Vec<Vec3>)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut out = sim.compute_forces_profiled(&set.particles);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&out.accels);
        if dt < best_s {
            best_s = dt;
            let profile = out.profile.take().expect("profiled run yields a profile");
            best = Some((profile, out.stats.interactions(), out.accels));
        }
    }
    let (profile, interactions, accels) = best.expect("at least one repetition");
    (profile, best_s, interactions, accels)
}

/// Relative accel error vs. the direct sum at the sampled targets:
/// `(rms, max)` of `|a - a_direct| / |a_direct|`.
fn sampled_error(accels: &[Vec3], targets: &[usize], exact: &[Vec3]) -> (f64, f64) {
    let mut sum_sq = 0.0;
    let mut max = 0.0f64;
    for (&i, &a_exact) in targets.iter().zip(exact) {
        let rel = accels[i].dist(a_exact) / a_exact.norm().max(1e-300);
        sum_sq += rel * rel;
        max = max.max(rel);
    }
    (if targets.is_empty() { 0.0 } else { (sum_sq / targets.len() as f64).sqrt() }, max)
}

/// Record the f64 kernel-throughput regression check against the committed
/// baseline. A missing or unparsable baseline is a hard failure (see `gate`).
fn check_baseline(path: &Path, current: &Report, max_regression: f64, gate: &mut GateTable) {
    let text = require_baseline(
        path,
        "cargo run --release -p bhut-bench --bin simd -- --out results/simd.json",
    );
    let baseline: Report = parse_baseline(path, &text);
    let row = |r: &Report| {
        r.rows
            .iter()
            .find(|row| row.precision == "f64")
            .map(|row| row.kernel_interactions_per_s)
            .unwrap_or(0.0)
    };
    let was = row(&baseline);
    let now = row(current);
    let ratio = if now > 0.0 { was / now } else { f64::INFINITY };
    println!(
        "baseline f64 kernel {:.2e} interactions/s, current {:.2e} ({}{:.0}% of baseline)",
        was,
        now,
        if now >= was { "+" } else { "" },
        (now / was - 1.0) * 100.0
    );
    gate.check(
        "f64 kernel throughput vs baseline",
        format!("{now:.2e}/s ({ratio:.2}x slower)"),
        format!("<= {max_regression:.2}x slower"),
        was > 0.0 && ratio <= max_regression,
    );
}

fn main() {
    let args = parse_args();
    let set = plummer(PlummerSpec { n: args.n, ..Default::default() });

    // Direct-sum reference at a deterministic stride sample of targets.
    let sample = args.n.min(2000);
    let stride = (args.n / sample.max(1)).max(1);
    let targets: Vec<usize> = (0..sample).map(|i| i * stride).collect();
    let exact: Vec<Vec3> = targets
        .iter()
        .map(|&i| {
            let p = &set.particles[i];
            accel_direct(&set.particles, p.pos, Some(p.id), EPS)
        })
        .collect();

    let precisions = [KernelPrecision::ScalarF64, KernelPrecision::F64, KernelPrecision::MixedF32];
    let mut rows: Vec<PrecisionReport> = Vec::new();
    let mut scalar_kernel_s = f64::NAN;
    for precision in precisions {
        let (profile, best_s, interactions, accels) =
            run_precision(&set, args.threads, args.reps, precision);
        let kernel_s = profile.phase_total(phase::KERNEL);
        if precision == KernelPrecision::ScalarF64 {
            scalar_kernel_s = kernel_s;
        }
        let (rms_rel_err, max_rel_err) = sampled_error(&accels, &targets, &exact);
        rows.push(PrecisionReport {
            precision: precision.as_str().to_string(),
            best_s,
            build_s: profile.phase_total(phase::BUILD),
            walk_s: profile.phase_total(phase::WALK),
            kernel_s,
            scatter_s: profile.phase_total(phase::SCATTER),
            interactions,
            kernel_interactions_per_s: if kernel_s > 0.0 {
                interactions as f64 / kernel_s
            } else {
                0.0
            },
            lane_utilization: profile.totals.lane_utilization(),
            kernel_speedup: if kernel_s > 0.0 { scalar_kernel_s / kernel_s } else { 0.0 },
            rms_rel_err,
            max_rel_err,
        });
    }

    println!(
        "simd ablation n={} threads={} reps={} (direct-sum sample {})",
        args.n, args.threads, args.reps, sample
    );
    println!(
        "  {:<11} {:>9} {:>10} {:>8} {:>6} {:>10} {:>10}",
        "precision", "total ms", "kernel ms", "speedup", "lanes", "rms err", "max err"
    );
    for r in &rows {
        println!(
            "  {:<11} {:>9.1} {:>10.1} {:>7.2}x {:>5.0}% {:>10.2e} {:>10.2e}",
            r.precision,
            r.best_s * 1e3,
            r.kernel_s * 1e3,
            r.kernel_speedup,
            r.lane_utilization * 100.0,
            r.rms_rel_err,
            r.max_rel_err
        );
    }

    // The mixed_f32 accuracy envelope: the f64 tree-code's θ-MAC error with
    // slack, plus the f32 noise floor.
    let f64_rms = rows[1].rms_rel_err;
    let envelope = f64_rms * ENVELOPE_SLACK + F32_NOISE_FLOOR;
    let mixed_rms = rows[2].rms_rel_err;
    println!(
        "mixed_f32 rms {:.2e} vs envelope {:.2e} (f64 rms {:.2e} x {} + {:.0e})",
        mixed_rms, envelope, f64_rms, ENVELOPE_SLACK, F32_NOISE_FLOOR
    );

    let report = Report {
        benchmark: "simd".to_string(),
        distribution: "plummer".to_string(),
        n: args.n,
        threads: args.threads,
        reps: args.reps,
        sample,
        alpha: ALPHA,
        eps: EPS,
        mixed_error_envelope: envelope,
        rows,
        peak_rss_mb: bhut_bench::rss::peak_rss_mb(),
    };

    let mut gate = GateTable::new("simd");
    gate.info("config", format!("n={} threads={} reps={}", args.n, args.threads, args.reps));
    gate.info("peak_rss_mb", format!("{:.1}", report.peak_rss_mb));
    let f64_speedup = report.rows[1].kernel_speedup;
    gate.check(
        "f64 kernel speedup over scalar",
        format!("{f64_speedup:.2}x"),
        format!(">= {:.2}x", args.min_kernel_speedup),
        f64_speedup >= args.min_kernel_speedup,
    );
    gate.check(
        "mixed_f32 rms error vs MAC envelope",
        format!("{mixed_rms:.2e}"),
        format!("<= {envelope:.2e}"),
        mixed_rms <= envelope,
    );
    if let Some(p) = args.baseline.as_ref() {
        check_baseline(p, &report, args.max_regression, &mut gate);
    }

    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    let json = serde_json::to_string(&report).expect("serialize report");
    bhut_sim::write_text_atomically(&args.out, &json).expect("write report");
    println!("wrote {}", args.out.display());

    gate.finish();
}
