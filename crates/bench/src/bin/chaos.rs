//! Chaos gate: inject a fault into a real multi-process run, let the
//! supervisor recover it, and prove the recovered trajectory matches the
//! fault-free one.
//!
//! ```text
//! cargo run --release -p bhut-bench --bin chaos -- \
//!     [--scheme spsa|spda|dpda|all] [--ranks 4] [--n 5000] [--steps 3] \
//!     [--fault kill-at-step|wedge-read|none] [--fault-rank 1] [--fault-step 1] \
//!     [--mode respawn|degrade] [--ckpt-every 1] [--timeout-s 15] \
//!     [--out results/chaos.json] [--force-tol 1e-12]
//! ```
//!
//! Per scheme, through one [`GateTable`]:
//!
//! 1. **Recovery happened** — with a fault injected, the supervisor must
//!    record at least one respawn (the fault actually fired and was
//!    survived), and under `--mode degrade` the mesh must have shrunk.
//! 2. **State equivalence** — final per-particle positions/velocities vs
//!    the fault-free single-process reference: **bitwise** (max |err| = 0)
//!    for full-width respawn; within `--force-tol` for degraded
//!    continuation.
//! 3. **Force equivalence** — last-step accelerations/potentials under the
//!    same rule.
//!
//! Child ranks re-execute this binary: [`maybe_child`] runs first.

use bhut_bench::gate::GateTable;
use bhut_core::balance::Scheme;
use bhut_proc::{
    degraded_size, local_mesh, maybe_child, run_rank, FaultPlan, Launcher, ProcConfig,
    RecoveryPolicy, SupervisedResult,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

#[derive(Serialize, Deserialize, Clone)]
struct SchemeChaos {
    scheme: String,
    ranks: usize,
    ranks_after: usize,
    n: usize,
    steps: usize,
    fault: String,
    mode: String,
    recoveries: u64,
    resume_epoch: u64,
    checkpoints: u64,
    rollback_steps: u64,
    /// Max |recovered - reference| over final positions and velocities.
    state_max_abs_err: f64,
    /// Max |recovered - reference| over last-step accelerations/potentials.
    force_max_abs_err: f64,
    /// Exit-status triage of the rank the failure was attributed to.
    failure_detail: String,
    wall_s: f64,
}

#[derive(Serialize, Deserialize)]
struct ChaosReport {
    benchmark: String,
    distribution: String,
    ranks: usize,
    n: usize,
    steps: usize,
    fault: String,
    mode: String,
    schemes: Vec<SchemeChaos>,
}

struct Args {
    schemes: Vec<Scheme>,
    ranks: usize,
    n: usize,
    steps: usize,
    fault: String,
    fault_rank: usize,
    fault_step: u64,
    mode: String,
    ckpt_every: u64,
    timeout_s: u64,
    out: PathBuf,
    force_tol: f64,
}

fn parse_schemes(spec: &str) -> Vec<Scheme> {
    match spec {
        "all" => vec![Scheme::Spsa, Scheme::Spda, Scheme::Dpda],
        "spsa" => vec![Scheme::Spsa],
        "spda" => vec![Scheme::Spda],
        "dpda" => vec![Scheme::Dpda],
        other => panic!("unknown scheme {other:?} (want spsa|spda|dpda|all)"),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        schemes: parse_schemes("all"),
        ranks: 4,
        n: 5_000,
        steps: 3,
        fault: "kill-at-step".to_string(),
        fault_rank: 1,
        fault_step: 1,
        mode: "respawn".to_string(),
        ckpt_every: 1,
        timeout_s: 15,
        out: PathBuf::from("results/chaos.json"),
        force_tol: 1e-12,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match arg.as_str() {
            "--scheme" => args.schemes = parse_schemes(&val("--scheme")),
            "--ranks" => args.ranks = val("--ranks").parse().expect("--ranks"),
            "--n" => args.n = val("--n").parse().expect("--n"),
            "--steps" => args.steps = val("--steps").parse().expect("--steps"),
            "--fault" => args.fault = val("--fault"),
            "--fault-rank" => args.fault_rank = val("--fault-rank").parse().expect("--fault-rank"),
            "--fault-step" => args.fault_step = val("--fault-step").parse().expect("--fault-step"),
            "--mode" => args.mode = val("--mode"),
            "--ckpt-every" => args.ckpt_every = val("--ckpt-every").parse().expect("--ckpt-every"),
            "--timeout-s" => args.timeout_s = val("--timeout-s").parse().expect("--timeout-s"),
            "--out" => args.out = PathBuf::from(val("--out")),
            "--force-tol" => args.force_tol = val("--force-tol").parse().expect("--force-tol"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(matches!(args.fault.as_str(), "kill-at-step" | "wedge-read" | "none"), "--fault");
    assert!(matches!(args.mode.as_str(), "respawn" | "degrade"), "--mode");
    args
}

fn plan_for(args: &Args) -> FaultPlan {
    match args.fault.as_str() {
        "kill-at-step" => FaultPlan::kill_at_step(args.fault_rank, args.fault_step),
        // The wedge must outlast every peer's read deadline (so they — not
        // the wedged rank — observe the failure) and the supervisor's kill.
        "wedge-read" => {
            FaultPlan::wedge_at_step(args.fault_rank, args.fault_step, args.timeout_s * 3_000)
        }
        _ => FaultPlan::default(),
    }
}

fn run_scheme(scheme: Scheme, args: &Args) -> SchemeChaos {
    let name = format!("{scheme:?}").to_lowercase();
    let cfg = ProcConfig {
        scheme,
        n: args.n,
        steps: args.steps,
        ckpt_every: args.ckpt_every,
        ..ProcConfig::default()
    };

    // Fault-free single-process reference: same code path, p = 1; the
    // replicated-tree loop makes a p-rank run match it bitwise.
    let mut t = local_mesh(1).pop().expect("one endpoint");
    let reference = run_rank(&mut t, &cfg).expect("fault-free reference");
    let ref_parts: BTreeMap<u32, _> = reference.owned.iter().map(|q| (q.id, *q)).collect();
    let ref_forces: BTreeMap<u32, _> = reference.forces.iter().map(|f| (f.0, f)).collect();

    let policy = RecoveryPolicy { max_recoveries: 2, degrade: args.mode == "degrade" };
    let launcher = Launcher { timeout: Duration::from_secs(args.timeout_s), ..Launcher::default() };
    let t0 = Instant::now();
    let sup: SupervisedResult =
        launcher.run_supervised(args.ranks, &cfg, &plan_for(args), policy).unwrap_or_else(|e| {
            eprintln!("chaos: {name} supervised run failed: {e}");
            std::process::exit(1);
        });
    let wall_s = t0.elapsed().as_secs_f64();

    let mut state_err = 0.0f64;
    let mut force_err = 0.0f64;
    let mut seen_parts = 0usize;
    let mut seen_forces = 0usize;
    for rank in &sup.run.ranks {
        for q in &rank.owned {
            let r = ref_parts.get(&q.id).expect("reference particle");
            for d in [
                q.pos.x - r.pos.x,
                q.pos.y - r.pos.y,
                q.pos.z - r.pos.z,
                q.vel.x - r.vel.x,
                q.vel.y - r.vel.y,
                q.vel.z - r.vel.z,
            ] {
                state_err = state_err.max(d.abs());
            }
            seen_parts += 1;
        }
        for (id, acc, pot) in &rank.forces {
            let (_, racc, rpot) = ref_forces.get(id).expect("reference force");
            for d in [acc.x - racc.x, acc.y - racc.y, acc.z - racc.z, pot - rpot] {
                force_err = force_err.max(d.abs());
            }
            seen_forces += 1;
        }
    }
    assert_eq!(seen_parts, args.n, "{name}: every particle owned exactly once after recovery");
    assert_eq!(seen_forces, args.n, "{name}: every force reported exactly once after recovery");

    SchemeChaos {
        scheme: name,
        ranks: args.ranks,
        ranks_after: sup.ranks,
        n: args.n,
        steps: args.steps,
        fault: args.fault.clone(),
        mode: args.mode.clone(),
        recoveries: sup.recoveries.len() as u64,
        resume_epoch: sup.recoveries.last().map_or(0, |e| e.resume_epoch),
        checkpoints: sup.counters.checkpoints,
        rollback_steps: sup.counters.rollback_steps,
        state_max_abs_err: state_err,
        force_max_abs_err: force_err,
        failure_detail: sup.recoveries.first().map_or_else(String::new, |e| e.detail.clone()),
        wall_s,
    }
}

fn main() {
    maybe_child(); // child ranks of the supervised runs divert here
    let args = parse_args();

    let mut gate = GateTable::new("chaos");
    gate.info(
        "config",
        format!(
            "ranks={} n={} steps={} fault={} mode={} ckpt_every={}",
            args.ranks, args.n, args.steps, args.fault, args.mode, args.ckpt_every
        ),
    );

    let results: Vec<SchemeChaos> = args.schemes.iter().map(|&s| run_scheme(s, &args)).collect();

    for c in &results {
        println!(
            "{}: {} -> {} ranks, {} recoveries (epoch {}), {} ckpts, {:.2} s wall [{}]",
            c.scheme,
            c.ranks,
            c.ranks_after,
            c.recoveries,
            c.resume_epoch,
            c.checkpoints,
            c.wall_s,
            c.failure_detail,
        );
        if args.fault != "none" {
            gate.check(
                &format!("{}: fault recovered", c.scheme),
                format!("{} respawn(s)", c.recoveries),
                ">= 1".to_string(),
                c.recoveries >= 1,
            );
        }
        if args.mode == "degrade" {
            let want = degraded_size(
                match c.scheme.as_str() {
                    "spsa" => Scheme::Spsa,
                    "spda" => Scheme::Spda,
                    _ => Scheme::Dpda,
                },
                args.ranks,
            );
            gate.check(
                &format!("{}: mesh degraded", c.scheme),
                format!("{} ranks", c.ranks_after),
                format!("== {want}"),
                c.ranks_after == want,
            );
            gate.check(
                &format!("{}: degraded state vs fault-free", c.scheme),
                format!("{:.1e}", c.state_max_abs_err),
                format!("<= {:.0e}", args.force_tol),
                c.state_max_abs_err <= args.force_tol,
            );
            gate.check(
                &format!("{}: degraded forces vs fault-free", c.scheme),
                format!("{:.1e}", c.force_max_abs_err),
                format!("<= {:.0e}", args.force_tol),
                c.force_max_abs_err <= args.force_tol,
            );
        } else {
            gate.check(
                &format!("{}: recovered state vs fault-free", c.scheme),
                format!("{:.1e}", c.state_max_abs_err),
                "bitwise (= 0)".to_string(),
                c.state_max_abs_err == 0.0,
            );
            gate.check(
                &format!("{}: recovered forces vs fault-free", c.scheme),
                format!("{:.1e}", c.force_max_abs_err),
                "bitwise (= 0)".to_string(),
                c.force_max_abs_err == 0.0,
            );
        }
    }

    let report = ChaosReport {
        benchmark: "chaos".to_string(),
        distribution: "plummer".to_string(),
        ranks: args.ranks,
        n: args.n,
        steps: args.steps,
        fault: args.fault.clone(),
        mode: args.mode.clone(),
        schemes: results,
    };
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    let json = serde_json::to_string(&report).expect("serialize report");
    bhut_sim::write_text_atomically(&args.out, &json).expect("write report");
    println!("wrote {}", args.out.display());

    gate.finish();
}
