//! Walk-vectorization and interaction-list-reuse benchmark, with bitwise
//! and speedup gates.
//!
//! ```text
//! cargo run --release -p bhut-bench --bin walk -- \
//!     [--n 100000] [--reps 7] [--threads 1] [--out results/walk.json] \
//!     [--min-step-speedup 1.3] [--baseline results/walk.json] \
//!     [--max-regression 1.5]
//! ```
//!
//! Three end-to-end force-evaluation legs on a Plummer model, best-of-reps:
//!
//! * `scalar_mac` — per-node MAC classification (`mac_batch: false`), the
//!   pre-vectorization walk and the speedup denominator;
//! * `simd_mac`  — batched sibling classification through the
//!   [`bhut_tree::GroupMac`] SIMD path (the default); its f64 forces must
//!   be **bitwise identical** to `scalar_mac`'s;
//! * `mixed_f32` — the batched walk with the direct-f32 gather filling the
//!   `MixedF32` mirrors during traversal.
//!
//! Then the block-substep cycle — the workload this whole optimization
//! aims at. One cycle is a synchronized full step (tree rebuild) followed
//! by [`SUBSTEPS_PER_CYCLE`] masked fine-rung substeps (1-in-4 particles
//! active), exactly the rhythm of `TimestepMode::Block`. The *pre* cycle
//! runs the legacy configuration end to end (scalar MAC, every substep
//! re-walks); the *post* cycle runs the vectorized walk with `list_reuse`
//! on, so fine substeps replay each leaf's frozen interaction list. The
//! headline `--min-step-speedup` gate holds the post/pre cycle wall-time
//! ratio; forces are checked bitwise identical between the two the entire
//! way.
//!
//! Gates (any failure exits nonzero after writing `--out`):
//! * `--min-step-speedup`: block-cycle speedup (pre vs post, end to end);
//! * `simd_mac` must not regress below 0.9x of `scalar_mac` end-to-end
//!   (noise margin for smoke sizes and force-scalar builds);
//! * bitwise identity of f64 forces across MAC paths, and of the replayed
//!   substep against a cache-free scalar-MAC walk of the same buckets
//!   (always on, no flag); the replay-vs-legacy bucket-choice drift (leaf
//!   cell vs tight member box changes a few MAC decisions) must stay far
//!   below the method's own truncation error;
//! * list-reuse hit rate ≥ 0.5 on the masked substep;
//! * `--baseline`: the `simd_mac` step time must not regress by more than
//!   `--max-regression` against the committed report.

use bhut_bench::gate::{parse_baseline, require_baseline, GateTable};
use bhut_geom::{plummer, PlummerSpec};
use bhut_obs::{phase, StepProfile};
use bhut_threads::{EvalMode, ForceResult, Partitioning, ThreadConfig, ThreadSim};
use bhut_timestep::ActiveSet;
use bhut_tree::KernelPrecision;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

const ALPHA: f64 = 0.67;
const EPS: f64 = 1e-4;
/// Masked-substep density for the reuse leg: 1 in `ACTIVE_STRIDE` active.
const ACTIVE_STRIDE: usize = 4;
/// Fine-rung substeps per synchronized step in the block-cycle metric
/// (a `max_rung: 2` block schedule averages this many masked substeps per
/// full rebuild).
const SUBSTEPS_PER_CYCLE: usize = 3;

#[derive(Serialize, Deserialize)]
struct LegReport {
    leg: String,
    /// Best-of-reps wall seconds for one full force evaluation.
    best_s: f64,
    build_s: f64,
    walk_s: f64,
    kernel_s: f64,
    scatter_s: f64,
    mac_tests: u64,
    interactions: u64,
    /// End-to-end speedup over the scalar_mac leg (1.0 for that row).
    step_speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct ReuseReport {
    /// Fraction of particles active in the masked substep.
    active_fraction: f64,
    /// Best-of-reps masked-substep seconds on the legacy path (scalar MAC,
    /// no cache: every substep re-walks).
    rewalk_best_s: f64,
    /// Best-of-reps masked-substep seconds on the vectorized path replaying
    /// cached lists.
    replay_best_s: f64,
    /// `rewalk_best_s / replay_best_s`.
    substep_speedup: f64,
    /// Fine substeps per synchronized step in the cycle metric.
    substeps_per_cycle: usize,
    /// Legacy block cycle: scalar_mac full step + substeps, wall seconds.
    cycle_pre_s: f64,
    /// Vectorized block cycle: simd_mac full step + replayed substeps.
    cycle_post_s: f64,
    /// `cycle_pre_s / cycle_post_s` — the headline gated speedup.
    cycle_speedup: f64,
    /// Cache hit rate over the replayed substep's leaves.
    list_hit_rate: f64,
    /// Bytes the per-thread caches held after the replayed substep.
    list_bytes: u64,
    /// Largest relative acceleration difference between the replayed
    /// substep and the legacy tight-bucket rewalk. The cached path walks
    /// the leaf cell, the legacy path the tight member box, so the two MAC
    /// decision sets — and hence the truncation errors — differ slightly;
    /// both are valid Barnes-Hut approximations of the same accuracy class.
    bucket_rel_err: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    benchmark: String,
    distribution: String,
    n: usize,
    threads: usize,
    reps: usize,
    alpha: f64,
    eps: f64,
    rows: Vec<LegReport>,
    reuse: ReuseReport,
    /// Process peak RSS (MiB) at report time; 0 off Linux.
    peak_rss_mb: f64,
}

struct Args {
    n: usize,
    reps: usize,
    threads: usize,
    out: PathBuf,
    min_step_speedup: f64,
    baseline: Option<PathBuf>,
    max_regression: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 100_000,
        reps: 7,
        threads: 1,
        out: PathBuf::from("results/walk.json"),
        min_step_speedup: 0.0,
        baseline: None,
        max_regression: 1.5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match arg.as_str() {
            "--n" => args.n = val("--n").parse().expect("--n"),
            "--reps" => args.reps = val("--reps").parse().expect("--reps"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads"),
            "--out" => args.out = PathBuf::from(val("--out")),
            "--min-step-speedup" => {
                args.min_step_speedup =
                    val("--min-step-speedup").parse().expect("--min-step-speedup")
            }
            "--baseline" => args.baseline = Some(PathBuf::from(val("--baseline"))),
            "--max-regression" => {
                args.max_regression = val("--max-regression").parse().expect("--max-regression")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn executor(
    threads: usize,
    precision: KernelPrecision,
    mac_batch: bool,
    list_reuse: bool,
) -> ThreadSim {
    ThreadSim::new(ThreadConfig {
        threads,
        alpha: ALPHA,
        degree: 0,
        eps: EPS,
        leaf_capacity: 8,
        partitioning: Partitioning::MortonZones,
        eval_mode: EvalMode::Grouped,
        precision,
        mac_batch,
        list_reuse,
    })
}

/// Best-of-`reps` profiled full force evaluation; returns the best
/// repetition's profile, wall seconds, and the full result for bitwise
/// comparisons.
fn run_leg(
    set: &bhut_geom::ParticleSet,
    threads: usize,
    reps: usize,
    precision: KernelPrecision,
    mac_batch: bool,
) -> (StepProfile, f64, ForceResult) {
    let mut sim = executor(threads, precision, mac_batch, false);
    let mut best_s = f64::INFINITY;
    let mut best: Option<ForceResult> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = sim.compute_forces_profiled(&set.particles);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&out.accels);
        if dt < best_s {
            best_s = dt;
            best = Some(out);
        }
    }
    let mut out = best.expect("at least one repetition");
    let profile = out.profile.take().expect("profiled run yields a profile");
    (profile, best_s, out)
}

/// True iff the two results carry bit-for-bit equal accelerations and
/// potentials.
fn bitwise_equal(a: &ForceResult, b: &ForceResult) -> bool {
    a.accels.len() == b.accels.len()
        && a.accels.iter().zip(&b.accels).all(|(x, y)| {
            x.x.to_bits() == y.x.to_bits()
                && x.y.to_bits() == y.y.to_bits()
                && x.z.to_bits() == y.z.to_bits()
        })
        && a.potentials.len() == b.potentials.len()
        && a.potentials.iter().zip(&b.potentials).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Largest relative acceleration difference between two results (L∞ over
/// components, relative to the larger magnitude; exact zeros compare equal).
fn max_rel_accel_err(a: &ForceResult, b: &ForceResult) -> f64 {
    let mut worst: f64 = 0.0;
    for (x, y) in a.accels.iter().zip(&b.accels) {
        for (u, v) in [(x.x, y.x), (x.y, y.y), (x.z, y.z)] {
            let scale = u.abs().max(v.abs());
            if scale > 0.0 {
                worst = worst.max((u - v).abs() / scale);
            }
        }
    }
    worst
}

/// Time the masked substep on `sim`, best of `reps`, returning a profiled
/// repetition's result alongside. `reuse` is forwarded to the executor
/// (moot when the config has `list_reuse: false`).
fn run_substep(
    sim: &mut ThreadSim,
    particles: &[bhut_geom::Particle],
    active: &ActiveSet,
    reps: usize,
    reuse: bool,
) -> (f64, ForceResult) {
    let mut best_s = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = sim.compute_forces_substep(particles, active, false, reuse);
        best_s = best_s.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(&out.accels);
    }
    let profiled = sim.compute_forces_substep(particles, active, true, reuse);
    (best_s, profiled)
}

/// Record the simd_mac step-time regression check against the committed
/// baseline. A missing or unparsable baseline is a hard failure (see `gate`).
fn check_baseline(path: &Path, current: &Report, max_regression: f64, gate: &mut GateTable) {
    let text = require_baseline(
        path,
        "cargo run --release -p bhut-bench --bin walk -- --out results/walk.json",
    );
    let baseline: Report = parse_baseline(path, &text);
    let row = |r: &Report| {
        r.rows.iter().find(|row| row.leg == "simd_mac").map(|row| row.best_s).unwrap_or(0.0)
    };
    let (was, now) = (row(&baseline), row(current));
    let ratio = if was > 0.0 { now / was } else { f64::INFINITY };
    println!(
        "baseline simd_mac step {:.1} ms, current {:.1} ms ({ratio:.2}x baseline)",
        was * 1e3,
        now * 1e3
    );
    gate.check(
        "simd_mac step time vs baseline",
        format!("{:.1} ms ({ratio:.2}x)", now * 1e3),
        format!("<= {max_regression:.2}x slower"),
        was > 0.0 && ratio <= max_regression,
    );
}

fn main() {
    let args = parse_args();
    let set = plummer(PlummerSpec { n: args.n, ..Default::default() });
    let n = set.particles.len();

    // --- End-to-end legs -------------------------------------------------
    let legs: [(&str, KernelPrecision, bool); 3] = [
        ("scalar_mac", KernelPrecision::F64, false),
        ("simd_mac", KernelPrecision::F64, true),
        ("mixed_f32", KernelPrecision::MixedF32, true),
    ];
    let mut rows: Vec<LegReport> = Vec::new();
    let mut scalar_best = f64::NAN;
    let mut kept: Vec<ForceResult> = Vec::new();
    for (leg, precision, mac_batch) in legs {
        let (profile, best_s, out) = run_leg(&set, args.threads, args.reps, precision, mac_batch);
        if leg == "scalar_mac" {
            scalar_best = best_s;
        }
        rows.push(LegReport {
            leg: leg.to_string(),
            best_s,
            build_s: profile.phase_total(phase::BUILD),
            walk_s: profile.phase_total(phase::WALK),
            kernel_s: profile.phase_total(phase::KERNEL),
            scatter_s: profile.phase_total(phase::SCATTER),
            mac_tests: profile.totals.mac_tests,
            interactions: out.stats.interactions(),
            step_speedup: scalar_best / best_s,
        });
        kept.push(out);
    }
    let mac_paths_bitwise = bitwise_equal(&kept[0], &kept[1]);

    // --- Block-substep cycle: legacy vs vectorized+reuse ------------------
    let active = ActiveSet::from_mask((0..n).map(|i| i % ACTIVE_STRIDE == 0).collect());
    // `warm` is the full post-PR configuration; `legacy` is the pre-PR walk
    // (per-node MAC classification, no caches, every substep re-walks).
    let mut warm = executor(args.threads, KernelPrecision::F64, true, true);
    let mut legacy = executor(args.threads, KernelPrecision::F64, false, false);
    // One synchronized step freezes the tree and (for `warm`) fills the
    // per-thread caches; the masked substeps that follow replay them.
    warm.compute_forces_substep(&set.particles, &ActiveSet::all(n), false, false);
    legacy.compute_forces_substep(&set.particles, &ActiveSet::all(n), false, false);
    let (replay_best_s, replay) = run_substep(&mut warm, &set.particles, &active, args.reps, true);
    let (rewalk_best_s, rewalk) =
        run_substep(&mut legacy, &set.particles, &active, args.reps, false);
    // Bitwise reference for the replay: a cache-*free* scalar-MAC walk down
    // the same leaf-cell bucket path (`list_reuse` on, budget 0, so every
    // leaf misses and walks fresh). This crosses the classify path
    // (SIMD vs scalar), the mixed-tail resolve (lanes vs scalar), and the
    // replay-vs-fresh-walk split in one comparison. The *legacy* rewalk is
    // deliberately not the reference: `gather_group` walks the tight member
    // bounding box while the cached path walks the leaf cell, a documented
    // ULP-level difference in summation that predates neither path being
    // wrong (see `gather_group_cached`).
    let mut reference = executor(args.threads, KernelPrecision::F64, false, true);
    reference.set_walk_cache_budget(0);
    reference.compute_forces_substep(&set.particles, &ActiveSet::all(n), false, false);
    let fresh = reference.compute_forces_substep(&set.particles, &active, false, true);
    let replay_bitwise = bitwise_equal(&replay, &fresh);
    let bucket_rel_err = max_rel_accel_err(&replay, &rewalk);
    let totals = &replay.profile.as_ref().expect("profiled substep").totals;
    // The cycle metric composes the already-measured full synchronized
    // steps (scalar_mac / simd_mac legs) with the masked substeps above.
    let cycle_pre_s = scalar_best + SUBSTEPS_PER_CYCLE as f64 * rewalk_best_s;
    let cycle_post_s = rows[1].best_s + SUBSTEPS_PER_CYCLE as f64 * replay_best_s;
    let reuse = ReuseReport {
        active_fraction: active.count() as f64 / n as f64,
        rewalk_best_s,
        replay_best_s,
        substep_speedup: rewalk_best_s / replay_best_s,
        substeps_per_cycle: SUBSTEPS_PER_CYCLE,
        cycle_pre_s,
        cycle_post_s,
        cycle_speedup: cycle_pre_s / cycle_post_s,
        list_hit_rate: totals.list_hit_rate(),
        list_bytes: totals.list_bytes,
        bucket_rel_err,
    };

    // --- Table ------------------------------------------------------------
    println!("walk bench n={} threads={} reps={}", args.n, args.threads, args.reps);
    println!(
        "  {:<11} {:>9} {:>9} {:>10} {:>9} {:>12} {:>8}",
        "leg", "total ms", "walk ms", "kernel ms", "mac", "interactions", "speedup"
    );
    for r in &rows {
        println!(
            "  {:<11} {:>9.1} {:>9.1} {:>10.1} {:>9} {:>12} {:>7.2}x",
            r.leg,
            r.best_s * 1e3,
            r.walk_s * 1e3,
            r.kernel_s * 1e3,
            r.mac_tests,
            r.interactions,
            r.step_speedup
        );
    }
    println!(
        "  list reuse: {:.0}% active substep {:.1} ms replayed vs {:.1} ms legacy re-walk \
         ({:.2}x, hit rate {:.0}%, {} KiB cached)",
        reuse.active_fraction * 100.0,
        reuse.replay_best_s * 1e3,
        reuse.rewalk_best_s * 1e3,
        reuse.substep_speedup,
        reuse.list_hit_rate * 100.0,
        reuse.list_bytes / 1024
    );
    println!(
        "  block cycle (1 full + {} substeps): {:.1} ms legacy vs {:.1} ms vectorized+reuse \
         ({:.2}x)",
        reuse.substeps_per_cycle,
        reuse.cycle_pre_s * 1e3,
        reuse.cycle_post_s * 1e3,
        reuse.cycle_speedup
    );

    let report = Report {
        benchmark: "walk".to_string(),
        distribution: "plummer".to_string(),
        n: args.n,
        threads: args.threads,
        reps: args.reps,
        alpha: ALPHA,
        eps: EPS,
        rows,
        reuse,
        peak_rss_mb: bhut_bench::rss::peak_rss_mb(),
    };

    // --- Gates ------------------------------------------------------------
    let mut gate = GateTable::new("walk");
    gate.info("config", format!("n={} threads={} reps={}", args.n, args.threads, args.reps));
    gate.info("peak_rss_mb", format!("{:.1}", report.peak_rss_mb));
    let cycle_speedup = report.reuse.cycle_speedup;
    gate.check(
        "block cycle end-to-end speedup",
        format!("{cycle_speedup:.2}x"),
        format!(">= {:.2}x", args.min_step_speedup),
        cycle_speedup >= args.min_step_speedup,
    );
    // Classification is a modest slice of the step, so this guards against
    // the batched path *regressing*, with margin for runner noise and for
    // force-scalar builds where the batch does the same scalar work (the
    // committed full-size measurement is 1.12x).
    let step_speedup = report.rows[1].step_speedup;
    gate.check(
        "simd_mac full-step speedup over scalar_mac",
        format!("{step_speedup:.2}x"),
        ">= 0.90x".to_string(),
        step_speedup >= 0.9,
    );
    gate.check(
        "f64 forces bitwise across MAC paths",
        if mac_paths_bitwise { "identical" } else { "DIVERGED" }.to_string(),
        "bitwise".to_string(),
        mac_paths_bitwise,
    );
    gate.check(
        "replayed substep bitwise vs cache-free scalar walk",
        if replay_bitwise { "identical" } else { "DIVERGED" }.to_string(),
        "bitwise".to_string(),
        replay_bitwise,
    );
    gate.check(
        "replay vs legacy bucket-choice drift",
        format!("{:.2e}", report.reuse.bucket_rel_err),
        "<= 1e-6".to_string(),
        report.reuse.bucket_rel_err <= 1e-6,
    );
    gate.check(
        "list reuse hit rate",
        format!("{:.2}", report.reuse.list_hit_rate),
        ">= 0.50".to_string(),
        report.reuse.list_hit_rate >= 0.5,
    );
    if let Some(p) = args.baseline.as_ref() {
        check_baseline(p, &report, args.max_regression, &mut gate);
    }

    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    let json = serde_json::to_string(&report).expect("serialize report");
    bhut_sim::write_text_atomically(&args.out, &json).expect("write report");
    println!("wrote {}", args.out.display());

    gate.finish();
}
