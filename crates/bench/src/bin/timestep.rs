//! Block-timestep vs global-timestep benchmark at matched accuracy.
//!
//! ```text
//! cargo run --release -p bhut-bench --bin timestep -- \
//!     [--n 20000] [--threads 1] [--big-steps 4] \
//!     [--eta-global 0.1] [--eta-block 0.05] [--max-rung-cap 8] \
//!     [--out results/timestep.json] [--min-speedup 0] [--smoke]
//! ```
//!
//! The protocol integrates the same clustered Plummer model twice over the
//! same time span `big_steps · dt_max` and compares wall-clock at matched
//! (or better) energy accuracy:
//!
//! * **global** — classic leapfrog whose single dt satisfies the
//!   acceleration criterion `dt = η_g·√(ε/|a|)` for *every* particle, i.e.
//!   the tightest particle sets the pace for all n.
//! * **block** — the S12 rung hierarchy with a *stricter* per-particle
//!   criterion (`η_b < η_g`), so every particle steps at or below its own
//!   criterion dt while the loose majority avoids the tight minority's dt.
//!
//! The hierarchy is sized from the initial acceleration distribution: one
//! rung boundary is aligned just below the `--bulk` percentile (default
//! 0.08) so the bulk of the particles steps within a few percent of its
//! criterion rather than paying the up-to-2x power-of-two rounding loss,
//! coarser rungs cover the loose tail up to the `--anchor` percentile
//! (default 0.9), and the hierarchy is deep enough for the finest rung to
//! satisfy the tightest particle's criterion. The global dt is the largest
//! power-of-two fraction
//! of `dt_max` satisfying the global criterion, so both runs hit the same
//! big-step boundaries, where energy drift is checkpointed with the
//! tree-based `O(n log n)` report.
//!
//! With `--min-speedup` the process exits nonzero when the measured
//! block-vs-global speedup falls short — the CI smoke run keeps it at 0
//! (scheduling noise on tiny n), the committed `results/timestep.json`
//! records the full-size measurement.

use bhut_bench::gate::GateTable;
use bhut_geom::{plummer, ParticleSet, PlummerSpec};
use bhut_sim::{EnergyReport, Simulation, SimulationConfig};
use bhut_threads::{EvalMode, KernelPrecision, Partitioning, ThreadConfig, ThreadSim};
use bhut_timestep::{BlockConfig, TimestepMode};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Force-evaluation opening angle (the workspace's production default).
const ALPHA: f64 = 0.67;
/// Opening angle of the energy checkpoints — tighter than the force path so
/// the diagnostic is not the thing being benchmarked.
const DIAG_ALPHA: f64 = 0.3;

#[derive(Debug, Serialize, Deserialize)]
struct RunReport {
    /// "global" or "block".
    mode: String,
    /// Integration wall-clock, energy checkpoints excluded.
    wall_s: f64,
    /// Force-evaluation substeps over the whole span.
    substeps: u64,
    /// Per-particle force evaluations over the whole span.
    force_evals: u64,
    /// Worst |ΔE/E| across the big-step checkpoints.
    max_drift: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    benchmark: String,
    distribution: String,
    n: usize,
    threads: usize,
    big_steps: usize,
    eta_global: f64,
    eta_block: f64,
    eps: f64,
    dt_max: f64,
    max_rung: u32,
    dt_global: f64,
    global: RunReport,
    block: RunReport,
    /// global wall / block wall.
    speedup: f64,
    /// Block drift ≤ global drift (the matched-accuracy condition).
    matched: bool,
    /// Particles per rung at the end of the block run (index = rung).
    rung_population: Vec<u64>,
    /// Force evaluations charged to each rung in the last big step.
    forces_per_rung: Vec<u64>,
}

struct Args {
    n: usize,
    threads: usize,
    big_steps: usize,
    eta_global: f64,
    eta_block: f64,
    eps: f64,
    max_rung_cap: u32,
    anchor: f64,
    bulk: f64,
    out: PathBuf,
    min_speedup: f64,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 20_000,
        threads: 1,
        big_steps: 4,
        eta_global: 0.1,
        eta_block: 0.05,
        eps: 1e-3,
        max_rung_cap: 8,
        anchor: 0.9,
        bulk: 0.08,
        out: PathBuf::from("results/timestep.json"),
        min_speedup: 0.0,
        seed: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match arg.as_str() {
            "--n" => args.n = val("--n").parse().expect("--n"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads"),
            "--big-steps" => args.big_steps = val("--big-steps").parse().expect("--big-steps"),
            "--eta-global" => args.eta_global = val("--eta-global").parse().expect("--eta-global"),
            "--eta-block" => args.eta_block = val("--eta-block").parse().expect("--eta-block"),
            "--eps" => args.eps = val("--eps").parse().expect("--eps"),
            "--max-rung-cap" => {
                args.max_rung_cap = val("--max-rung-cap").parse().expect("--max-rung-cap")
            }
            "--anchor" => args.anchor = val("--anchor").parse().expect("--anchor"),
            "--bulk" => args.bulk = val("--bulk").parse().expect("--bulk"),
            "--out" => args.out = PathBuf::from(val("--out")),
            "--min-speedup" => {
                args.min_speedup = val("--min-speedup").parse().expect("--min-speedup")
            }
            "--seed" => args.seed = val("--seed").parse().expect("--seed"),
            "--smoke" => {
                args.n = 2000;
                args.big_steps = 2;
                args.max_rung_cap = 6;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

/// Sorted-percentile helper (q in [0, 1]).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The acceleration-criterion dts for the initial configuration.
fn criterion_dts(set: &ParticleSet, threads: usize, eta: f64, eps: f64) -> Vec<f64> {
    let mut ex = ThreadSim::new(ThreadConfig {
        threads,
        alpha: ALPHA,
        degree: 0,
        eps,
        leaf_capacity: 8,
        partitioning: Partitioning::MortonZones,
        eval_mode: EvalMode::Grouped,
        precision: KernelPrecision::F64,
        ..ThreadConfig::default()
    });
    let out = ex.compute_forces(&set.particles);
    out.accels
        .iter()
        .map(|a| {
            let norm = a.norm();
            if norm > 0.0 {
                eta * (eps / norm).sqrt()
            } else {
                f64::INFINITY
            }
        })
        .collect()
}

fn sim_config(args: &Args, dt: f64, timestep: TimestepMode) -> SimulationConfig {
    SimulationConfig {
        dt,
        alpha: ALPHA,
        eps: args.eps,
        threads: args.threads,
        timestep,
        ..Default::default()
    }
}

/// Integrate `big_steps` spans of `dt_max`, checkpointing energy drift at
/// each boundary; `steps_per_big` is 1 on the block path (one big step per
/// call) and `dt_max/dt` on the global path.
fn run(
    mode: &str,
    set: &ParticleSet,
    cfg: SimulationConfig,
    big_steps: usize,
    steps_per_big: usize,
    eps: f64,
) -> (RunReport, Option<Simulation>) {
    let mut sim = Simulation::new(set.clone(), cfg);
    let e0 = EnergyReport::measure_tree(&sim.particles, eps, DIAG_ALPHA);
    let mut wall_s = 0.0;
    let mut substeps = 0u64;
    let mut force_evals = 0u64;
    let mut max_drift = 0.0f64;
    for _ in 0..big_steps {
        let t0 = Instant::now();
        for _ in 0..steps_per_big {
            let r = sim.step();
            substeps += r.substeps;
            force_evals += r.force_evals;
        }
        wall_s += t0.elapsed().as_secs_f64();
        let e = EnergyReport::measure_tree(&sim.particles, eps, DIAG_ALPHA);
        max_drift = max_drift.max(e.drift_from(&e0));
    }
    let report = RunReport { mode: mode.to_string(), wall_s, substeps, force_evals, max_drift };
    (report, Some(sim))
}

fn main() {
    let args = parse_args();
    let set = plummer(PlummerSpec { n: args.n, seed: args.seed, ..Default::default() });

    // Size the hierarchy from the block criterion: dt_max sits at the
    // anchor percentile (the loose end, so the bulk of the distribution
    // lands on coarse rungs), and the hierarchy is deep enough that the
    // finest rung's dt does not exceed the tightest particle's criterion.
    let mut dts = criterion_dts(&set, args.threads, args.eta_block, args.eps);
    dts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "criterion dt percentiles: min={:.2e} p10={:.2e} p50={:.2e} p90={:.2e} max={:.2e}",
        dts[0],
        percentile(&dts, 0.1),
        percentile(&dts, 0.5),
        percentile(&dts, 0.9),
        dts[dts.len() - 1]
    );
    let dt_fine = dts[0];
    // Align one rung boundary just below the bulk of the distribution (its
    // `--bulk` percentile) so the majority steps within a few percent of
    // its criterion instead of paying the up-to-2x power-of-two rounding
    // loss. Coarser rungs cover the loose tail up to the `--anchor`
    // percentile; finer rungs reach the tightest particle.
    let dt_bulk = percentile(&dts, args.bulk) * 0.98;
    let coarse = ((percentile(&dts, args.anchor) / dt_bulk).log2().ceil() as u32).max(1);
    let dt_max = dt_bulk * (1u64 << coarse) as f64;
    let max_rung = ((dt_max / dt_fine).log2().ceil() as u32).clamp(coarse, args.max_rung_cap);

    // The global dt is the largest power-of-two fraction of dt_max meeting
    // the global criterion for every particle, so both runs share big-step
    // boundaries exactly.
    let dt_global_criterion = dts[0] * args.eta_global / args.eta_block;
    let global_splits = ((dt_max / dt_global_criterion).log2().ceil()).max(0.0) as u32;
    let steps_per_big = 1usize << global_splits;
    let dt_global = dt_max / steps_per_big as f64;

    println!(
        "n={} threads={} dt_max={dt_max:.3e} max_rung={max_rung} \
         dt_global={dt_global:.3e} ({steps_per_big} global steps per big step)",
        args.n, args.threads
    );

    let (global, _) = run(
        "global",
        &set,
        sim_config(&args, dt_global, TimestepMode::Global),
        args.big_steps,
        steps_per_big,
        args.eps,
    );
    let bcfg = BlockConfig { dt_max, max_rung, eta: args.eta_block, eps: args.eps };
    let (block, block_sim) = run(
        "block",
        &set,
        sim_config(&args, dt_max, TimestepMode::Block(bcfg)),
        args.big_steps,
        1,
        args.eps,
    );

    let speedup = if block.wall_s > 0.0 { global.wall_s / block.wall_s } else { 0.0 };
    let matched = block.max_drift <= global.max_drift;
    let stats = block_sim
        .as_ref()
        .and_then(|s| s.last_block_stats.clone())
        .expect("block run records stats");

    println!(
        "global: {:.1} ms, {} substeps, {:.2e} force evals, max drift {:.3e}",
        global.wall_s * 1e3,
        global.substeps,
        global.force_evals as f64,
        global.max_drift
    );
    println!(
        "block:  {:.1} ms, {} substeps, {:.2e} force evals, max drift {:.3e}",
        block.wall_s * 1e3,
        block.substeps,
        block.force_evals as f64,
        block.max_drift
    );
    println!(
        "speedup {speedup:.2}x, accuracy {} (rung populations {:?})",
        if matched { "matched" } else { "NOT matched" },
        stats.population
    );

    let report = Report {
        benchmark: "timestep".to_string(),
        distribution: "plummer".to_string(),
        n: args.n,
        threads: args.threads,
        big_steps: args.big_steps,
        eta_global: args.eta_global,
        eta_block: args.eta_block,
        eps: args.eps,
        dt_max,
        max_rung,
        dt_global,
        global,
        block,
        speedup,
        matched,
        rung_population: stats.population.clone(),
        forces_per_rung: stats.forces_per_rung.clone(),
    };
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    let json = serde_json::to_string(&report).expect("serialize report");
    bhut_sim::write_text_atomically(&args.out, &json).expect("write report");
    println!("wrote {}", args.out.display());

    let mut gate = GateTable::new("timestep");
    gate.info(
        "config",
        format!("n={} threads={} big_steps={}", args.n, args.threads, args.big_steps),
    );
    gate.check(
        "block vs global speedup",
        format!("{speedup:.2}x"),
        format!(">= {:.2}x", args.min_speedup),
        speedup >= args.min_speedup,
    );
    // Informational: accuracy matching is reported, not gated — tiny smoke
    // runs sit at the drift noise floor (same semantics as before).
    gate.info(
        "block drift vs global drift",
        format!(
            "{:.3e} vs {:.3e} ({})",
            report.block.max_drift,
            report.global.max_drift,
            if matched { "matched" } else { "not matched" }
        ),
    );
    gate.finish();
}
