//! Live query-service benchmark: a simulation stepping and publishing
//! epochs while concurrent clients stream field queries at the server.
//!
//! ```text
//! cargo run --release -p bhut-bench --bin serve -- \
//!     [--n 100000] [--steps 4] [--threads 2] [--clients 4] [--queries 40] \
//!     [--points 256] [--out results/serve.json] \
//!     [--baseline results/serve.json] [--max-regression 3.0] [--max-epoch-lag 1]
//! ```
//!
//! The harness builds a Plummer model, starts `bhut-serve` on a Unix
//! socket, then races two kinds of load: a simulation thread advancing
//! `--steps` leapfrog steps (publishing a fresh [`TreeEpoch`](bhut_serve::TreeEpoch) after every
//! step, like a production loop would) and `--clients` client threads each
//! firing `--queries` force-field requests of `--points` points at random
//! positions inside the cloud. Reported: end-to-end request latency
//! (p50/p99), point-query throughput, backpressure activity, and the
//! epoch lag distribution (how many publishes happened while a batch was
//! in flight).
//!
//! Hard gates (CI): every request answered (zero dropped in-flight
//! batches), the queue drained at shutdown, epoch lag bounded by
//! `--max-epoch-lag` (default 1 step), and — with `--baseline` — point
//! throughput within `--max-regression` of the committed baseline.

use bhut_bench::gate::{parse_baseline, require_baseline, GateTable};
use bhut_geom::{plummer, PlummerSpec, Vec3};
use bhut_serve::{
    EpochStore, KernelPrecision, QueryKind, QueryTarget, ServeClient, ServeConfig, Server,
};
use bhut_sim::{Simulation, SimulationConfig};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::Instant;

#[derive(Serialize, Deserialize)]
struct Report {
    benchmark: String,
    distribution: String,
    n: usize,
    steps: usize,
    threads: usize,
    clients: usize,
    queries_per_client: usize,
    points_per_query: usize,
    /// Wall seconds from the client start barrier to the last reply.
    wall_s: f64,
    /// Point evaluations per second across all clients — the gated metric.
    points_per_s: f64,
    requests_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    answered: u64,
    /// Requests rejected with retry-after (each was resent and answered).
    rejected: u64,
    client_retries: u64,
    queue_depth_peak: u64,
    epochs_published: u64,
    epochs_retired: u64,
    epoch_lag_max: u64,
    /// Process peak RSS (MiB) at report time; 0 off Linux.
    peak_rss_mb: f64,
}

struct Args {
    n: usize,
    steps: usize,
    threads: usize,
    clients: usize,
    queries: usize,
    points: usize,
    out: PathBuf,
    baseline: Option<PathBuf>,
    max_regression: f64,
    max_epoch_lag: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 100_000,
        steps: 4,
        threads: 2,
        clients: 4,
        queries: 40,
        points: 256,
        out: PathBuf::from("results/serve.json"),
        baseline: None,
        max_regression: 3.0,
        max_epoch_lag: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match arg.as_str() {
            "--n" => args.n = val("--n").parse().expect("--n"),
            "--steps" => args.steps = val("--steps").parse().expect("--steps"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads"),
            "--clients" => args.clients = val("--clients").parse().expect("--clients"),
            "--queries" => args.queries = val("--queries").parse().expect("--queries"),
            "--points" => args.points = val("--points").parse().expect("--points"),
            "--out" => args.out = PathBuf::from(val("--out")),
            "--baseline" => args.baseline = Some(PathBuf::from(val("--baseline"))),
            "--max-regression" => {
                args.max_regression = val("--max-regression").parse().expect("--max-regression")
            }
            "--max-epoch-lag" => {
                args.max_epoch_lag = val("--max-epoch-lag").parse().expect("--max-epoch-lag")
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// Deterministic per-thread position stream (splitmix64) inside the
/// Plummer cloud's core region.
fn query_points(seed: u64, count: usize) -> Vec<QueryTarget> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    (0..count)
        .map(|_| (Vec3::new(next() * 2.0 - 1.0, next() * 2.0 - 1.0, next() * 2.0 - 1.0), u32::MAX))
        .collect()
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn check_baseline(path: &Path, current: &Report, max_regression: f64, gate: &mut GateTable) {
    let text = require_baseline(
        path,
        "cargo run --release -p bhut-bench --bin serve -- --out results/serve.json",
    );
    let baseline: Report = parse_baseline(path, &text);
    let was = baseline.points_per_s;
    let now = current.points_per_s;
    let ratio = if now > 0.0 { was / now } else { f64::INFINITY };
    println!(
        "baseline {:.2e} points/s, current {:.2e} ({}{:.0}% of baseline)",
        was,
        now,
        if now >= was { "+" } else { "" },
        (now / was - 1.0) * 100.0
    );
    gate.check(
        "throughput vs baseline",
        format!("{now:.2e}/s ({ratio:.2}x slower)"),
        format!("<= {max_regression:.2}x slower"),
        ratio <= max_regression,
    );
}

fn main() {
    let args = parse_args();
    println!(
        "serve bench: n={} steps={} threads={} clients={} queries={} points={}",
        args.n, args.steps, args.threads, args.clients, args.queries, args.points
    );

    let set = plummer(PlummerSpec { n: args.n, ..Default::default() });
    let config = SimulationConfig {
        threads: args.threads,
        alpha: 0.6,
        leaf_capacity: 16,
        ..Default::default()
    };
    let (alpha, eps) = (config.alpha, config.eps);
    let mut sim = Simulation::new(set, config);

    let store = Arc::new(EpochStore::new());
    store.publish(sim.build_tree(), sim.particles.particles.clone(), alpha, eps);

    let sock = std::env::temp_dir().join(format!("bhut-serve-bench-{}.sock", std::process::id()));
    let server = Server::bind_unix(&sock, Arc::clone(&store), ServeConfig::default())
        .expect("bind unix socket");

    // The live simulation: step and publish, concurrently with the query
    // load. Publishing clones the particle array — the epoch must not
    // alias state the next step mutates.
    let sim_thread = {
        let store = Arc::clone(&store);
        let steps = args.steps;
        std::thread::spawn(move || {
            for _ in 0..steps {
                sim.step();
                store.publish(sim.build_tree(), sim.particles.particles.clone(), alpha, eps);
            }
        })
    };

    let start = Arc::new(Barrier::new(args.clients + 1));
    let mut clients = Vec::new();
    for c in 0..args.clients {
        let start = Arc::clone(&start);
        let sock = sock.clone();
        let (queries, points) = (args.queries, args.points);
        clients.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect_unix(&sock).expect("connect");
            start.wait();
            let mut latencies_ms = Vec::with_capacity(queries);
            for q in 0..queries {
                let targets = query_points((c as u64) << 32 | q as u64, points);
                let t0 = Instant::now();
                let reply = client
                    .query(QueryKind::Field, KernelPrecision::F64, &targets)
                    .expect("query answered");
                assert_eq!(reply.samples.len(), targets.len());
                latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            (latencies_ms, client.retries)
        }));
    }

    start.wait();
    let bench_t0 = Instant::now();
    let mut latencies_ms = Vec::new();
    let mut client_retries = 0u64;
    for c in clients {
        let (lat, retries) = c.join().expect("client thread");
        latencies_ms.extend(lat);
        client_retries += retries;
    }
    let wall_s = bench_t0.elapsed().as_secs_f64();
    sim_thread.join().expect("sim thread");
    let stats = server.stop();
    let _ = std::fs::remove_file(&sock);

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let answered = latencies_ms.len() as u64;
    let expected = (args.clients * args.queries) as u64;
    let total_points = answered * args.points as u64;
    let report = Report {
        benchmark: "serve".to_string(),
        distribution: "plummer".to_string(),
        n: args.n,
        steps: args.steps,
        threads: args.threads,
        clients: args.clients,
        queries_per_client: args.queries,
        points_per_query: args.points,
        wall_s,
        points_per_s: total_points as f64 / wall_s.max(1e-9),
        requests_per_s: answered as f64 / wall_s.max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        answered,
        rejected: stats.counters.rejected,
        client_retries,
        queue_depth_peak: stats.counters.queue_depth_peak,
        epochs_published: stats.counters.epochs_published,
        epochs_retired: stats.counters.epochs_retired,
        epoch_lag_max: stats.counters.epoch_lag_max,
        peak_rss_mb: bhut_bench::rss::peak_rss_mb(),
    };

    println!(
        "answered {} requests ({} points) in {:.2}s: {:.2e} points/s, p50 {:.2}ms p99 {:.2}ms, \
         {} rejected / {} retries, epoch lag max {}",
        report.answered,
        total_points,
        report.wall_s,
        report.points_per_s,
        report.p50_ms,
        report.p99_ms,
        report.rejected,
        report.client_retries,
        report.epoch_lag_max
    );

    let mut gate = GateTable::new("serve");
    gate.info(
        "config",
        format!(
            "n={} steps={} clients={} queries={} points={}",
            args.n, args.steps, args.clients, args.queries, args.points
        ),
    );
    gate.info("points/s", format!("{:.2e}", report.points_per_s));
    gate.info("p50/p99 ms", format!("{:.2}/{:.2}", report.p50_ms, report.p99_ms));
    gate.info("peak_rss_mb", format!("{:.1}", report.peak_rss_mb));
    gate.check(
        "zero dropped in-flight",
        format!("{answered} answered"),
        format!("== {expected}"),
        answered == expected,
    );
    gate.check(
        "queue drained at shutdown",
        format!("{}", stats.queue_depth),
        "== 0".to_string(),
        stats.queue_depth == 0,
    );
    gate.check(
        "epoch lag",
        format!("{}", report.epoch_lag_max),
        format!("<= {}", args.max_epoch_lag),
        report.epoch_lag_max <= args.max_epoch_lag,
    );
    gate.check(
        "backpressure accounted",
        format!("{} rejected / {} retries", report.rejected, report.client_retries),
        "rejected == retries".to_string(),
        report.rejected == report.client_retries,
    );
    if let Some(p) = args.baseline.as_ref() {
        check_baseline(p, &report, args.max_regression, &mut gate);
    }

    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    let json = serde_json::to_string(&report).expect("serialize report");
    bhut_sim::write_text_atomically(&args.out, &json).expect("write report");
    println!("wrote {}", args.out.display());

    gate.finish();
}
