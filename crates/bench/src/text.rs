//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A rendered experiment: title, column header, and rows of cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (paper values, caveats).
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for i in 0..cols {
                let _ = write!(s, " {:<w$} |", cells[i], w = widths[i]);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.header);
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<w$}|", "", w = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            line(&mut out, row);
        }
        for n in &self.notes {
            let _ = writeln!(out, "> {n}");
        }
        out
    }
}

/// Format seconds with 3 significant decimals.
pub fn secs(t: f64) -> String {
    format!("{t:.3}")
}

/// Format a ratio/efficiency with 2 decimals.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}")
}

/// Format a percentage with enough precision for small errors.
pub fn pct(r: f64) -> String {
    let v = r * 100.0;
    if v >= 0.1 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| long-name | 22    |"));
        assert!(s.contains("> a note"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(ratio(0.876), "0.88");
        assert_eq!(pct(0.0462), "4.62");
        assert_eq!(pct(0.000042), "0.0042");
    }
}
