//! Micro-benchmarks of the core kernels: Morton encoding, tree
//! construction, monopole/multipole force evaluation, collectives, and
//! branch lookup (§4.2.3's hash vs sorted-table comparison).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use bhut_core::branch::{BranchLookup, HashedLookup, SortedLookup};
use bhut_geom::{plummer, uniform_cube, PlummerSpec, Vec3};
use bhut_machine::{Collectives, CostModel, Hypercube};
use bhut_morton::{encode_3d, hilbert_index_3d, NodeKey};
use bhut_multipole::{Expansion, MultipoleTree};
use bhut_tree::build::{build, BuildParams};
use bhut_tree::group::{eval_group_monopole, leaf_schedule, InteractionBuffers};
use bhut_tree::{accel_on, potential_at, BarnesHutMac};

fn bench_morton(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordering");
    g.bench_function("morton_encode_3d", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u32 {
                acc ^= encode_3d(black_box(i), black_box(i * 7 % 2048), black_box(i * 13 % 2048));
            }
            acc
        })
    });
    g.bench_function("hilbert_index_3d", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u32 {
                acc ^= hilbert_index_3d(
                    black_box(i % 2048),
                    black_box(i * 7 % 2048),
                    black_box(i * 13 % 2048),
                    11,
                );
            }
            acc
        })
    });
    g.finish();
}

fn bench_tree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    for &n in &[1_000usize, 10_000] {
        let set = plummer(PlummerSpec { n, ..Default::default() });
        g.bench_with_input(BenchmarkId::new("bulk_morton", n), &set, |b, set| {
            b.iter(|| build(black_box(&set.particles), BuildParams::default()))
        });
    }
    g.finish();
}

fn bench_force_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("force_eval");
    let set = plummer(PlummerSpec { n: 10_000, ..Default::default() });
    let tree = build(&set.particles, BuildParams::default());
    let mac = BarnesHutMac::new(0.67);
    g.bench_function("monopole_accel_100_targets", |b| {
        b.iter(|| {
            let mut acc = Vec3::ZERO;
            for p in set.particles.iter().take(100) {
                acc += accel_on(&tree, &set.particles, p.pos, Some(p.id), &mac, 1e-4).0;
            }
            acc
        })
    });
    for degree in [2u32, 4] {
        let mt = MultipoleTree::new(&tree, &set.particles, degree);
        g.bench_with_input(BenchmarkId::new("multipole_eval_100_targets", degree), &mt, |b, mt| {
            b.iter(|| {
                let mut acc = 0.0;
                for p in set.particles.iter().take(100) {
                    acc += mt.eval(&tree, &set.particles, p.pos, Some(p.id), &mac, 1e-4).0;
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_group_walk(c: &mut Criterion) {
    // The tentpole comparison: full-sweep potential+acceleration for every
    // particle, per-particle walks vs grouped walks + batched kernels.
    // Single-threaded so the ratio is the kernel-level speedup; the numbers
    // in results/group_walk.json come from the same pair of loops.
    let mut g = c.benchmark_group("group_walk");
    g.sample_size(10);
    let mac = BarnesHutMac::new(0.67);
    let eps = 1e-4;
    for &n in &[10_000usize, 100_000] {
        let set = plummer(PlummerSpec { n, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        g.bench_with_input(BenchmarkId::new("per_particle", n), &set, |b, set| {
            b.iter(|| {
                let mut sum = 0.0;
                for p in set.particles.iter() {
                    let (phi, _) =
                        potential_at(&tree, &set.particles, p.pos, Some(p.id), &mac, eps);
                    let (acc, _) = accel_on(&tree, &set.particles, p.pos, Some(p.id), &mac, eps);
                    sum += phi + acc.x;
                }
                sum
            })
        });
        let leaves = leaf_schedule(&tree);
        let mut buf = InteractionBuffers::new();
        g.bench_with_input(BenchmarkId::new("grouped", n), &set, |b, set| {
            b.iter(|| {
                let mut sum = 0.0;
                for &leaf in &leaves {
                    eval_group_monopole(
                        &tree,
                        &set.particles,
                        leaf,
                        &mac,
                        eps,
                        &mut buf,
                        |_, phi, acc, _| sum += phi + acc.x,
                    );
                }
                sum
            })
        });
    }
    g.finish();
}

fn bench_multipole_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("multipole_ops");
    let set = uniform_cube(256, 1.0, 3);
    for degree in [2u32, 4, 6] {
        g.bench_with_input(BenchmarkId::new("p2m", degree), &degree, |b, &k| {
            b.iter(|| {
                Expansion::from_particles(
                    Vec3::splat(0.5),
                    k,
                    set.particles.iter().map(|p| (p.pos, p.mass)),
                )
            })
        });
        let e = Expansion::from_particles(
            Vec3::splat(0.5),
            degree,
            set.particles.iter().map(|p| (p.pos, p.mass)),
        );
        g.bench_with_input(BenchmarkId::new("m2m", degree), &e, |b, e| {
            b.iter(|| e.translate(black_box(Vec3::new(1.0, 0.5, 0.2))))
        });
        g.bench_with_input(BenchmarkId::new("m2p", degree), &e, |b, e| {
            b.iter(|| e.eval(black_box(Vec3::new(5.0, 4.0, 3.0))))
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    let topo = Hypercube::new(256);
    let coll = Collectives::new(&topo, CostModel::ncube2());
    let contrib: Vec<Vec<u64>> = (0..256).map(|r| vec![r as u64; 16]).collect();
    g.bench_function("all_to_all_broadcast_p256", |b| {
        b.iter(|| {
            let mut clocks = vec![0.0; 256];
            coll.all_to_all_broadcast(black_box(&mut clocks), &contrib, 2)
        })
    });
    g.finish();
}

fn bench_branch_lookup(c: &mut Criterion) {
    // A3: hash table vs sorted-table binary search for branch keys. The
    // paper saw no significant difference; the numbers here let a reader
    // verify that for realistic branch counts (hundreds) both are tens of
    // nanoseconds — dwarfed by the subtree interaction they gate.
    let mut g = c.benchmark_group("branch_lookup");
    for &count in &[64usize, 512, 4096] {
        let entries: Vec<(u64, u32)> = (0..count)
            .map(|i| {
                let mut k = NodeKey::ROOT;
                let mut v = i as u64;
                for _ in 0..7 {
                    k = k.child((v % 8) as u8);
                    v /= 8;
                }
                (k.raw(), i as u32)
            })
            .collect();
        let probes: Vec<u64> = entries.iter().map(|&(k, _)| k).collect();
        let hashed = HashedLookup::new(entries.clone());
        let sorted = SortedLookup::new(entries.clone());
        g.bench_with_input(BenchmarkId::new("hashed", count), &hashed, |b, l| {
            b.iter(|| {
                let mut hits = 0;
                for &k in &probes {
                    hits += l.find(black_box(k)).is_some() as u32;
                }
                hits
            })
        });
        g.bench_with_input(BenchmarkId::new("sorted", count), &sorted, |b, l| {
            b.iter(|| {
                let mut hits = 0;
                for &k in &probes {
                    hits += l.find(black_box(k)).is_some() as u32;
                }
                hits
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_morton,
        bench_tree_build,
        bench_force_eval,
        bench_group_walk,
        bench_multipole_ops,
        bench_collectives,
        bench_branch_lookup
);
criterion_main!(micro);
