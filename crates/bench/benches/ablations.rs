//! Ablations of the design choices DESIGN.md calls out: bin size, leaf
//! capacity `s`, SPDA's ordering curve, tree-merge style, and interconnect
//! topology. Each measures *simulated machine time* (the quantity the paper
//! reports), using the wall-clock of the deterministic simulation only as
//! the benchmark driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bhut_core::balance::{spda_initial, Curve, Scheme};
use bhut_core::domain::ClusterGrid;
use bhut_core::evalcore::EvalEnv;
use bhut_core::funcship::{run_force_phase, ForceConfig};
use bhut_core::partition::Partition;
use bhut_core::{ParallelSim, SimConfig};
use bhut_geom::{dataset_scaled, ParticleSet};
use bhut_machine::{CostModel, Crossbar, FatTree, Hypercube, Machine, Mesh2D, Topology};
use bhut_tree::build::{build, build_in_cell, BuildParams};
use bhut_tree::{BarnesHutMac, BinaryTree, Tree};

fn setup(n_scale: f64) -> (ParticleSet, Tree, ClusterGrid) {
    let set = dataset_scaled("g_160535", n_scale);
    let cell = set.bounding_cube().unwrap();
    let grid = ClusterGrid::new(16, cell);
    let tree = build_in_cell(
        &set.particles,
        cell,
        BuildParams { leaf_capacity: 8, collapse: true, min_split_level: grid.level() },
    );
    (set, tree, grid)
}

/// Simulated force time vs bin size (the paper uses 100 particles per bin).
fn bench_bin_size(c: &mut Criterion) {
    let (set, tree, grid) = setup(0.02);
    let p = 16;
    let owners = spda_initial(&grid, p, Curve::Morton);
    let part = Partition::from_clusters(&tree, &grid, &owners, p);
    let mac = BarnesHutMac::new(0.67);
    let env = EvalEnv {
        tree: &tree,
        particles: &set.particles,
        mtree: None,
        mac: &mac,
        eps: 1e-4,
        degree: 0,
    };
    let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
    let mut g = c.benchmark_group("bin_size");
    for bin in [10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(bin), &bin, |b, &bin| {
            b.iter(|| {
                let run = run_force_phase(
                    &machine,
                    &env,
                    &part,
                    None,
                    0,
                    false,
                    ForceConfig { bin_size: bin, batch: 4, ..Default::default() },
                );
                // the measured quantity: simulated machine seconds
                run.report.parallel_time()
            })
        });
    }
    g.finish();
}

/// Tree size/build cost vs leaf capacity `s`.
fn bench_leaf_capacity(c: &mut Criterion) {
    let set = dataset_scaled("g_160535", 0.05);
    let cell = set.bounding_cube().unwrap();
    let mut g = c.benchmark_group("leaf_capacity");
    for s in [1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| {
                build_in_cell(
                    &set.particles,
                    cell,
                    BuildParams { leaf_capacity: s, collapse: true, min_split_level: 0 },
                )
                .len()
            })
        });
    }
    g.finish();
}

/// SPDA with Morton vs Hilbert cluster ordering.
fn bench_ordering(c: &mut Criterion) {
    let set = dataset_scaled("g_160535", 0.02);
    let mut g = c.benchmark_group("spda_curve");
    for (name, curve) in [("morton", Curve::Morton), ("hilbert", Curve::Hilbert)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &curve, |b, &curve| {
            b.iter(|| {
                let machine = Machine::new(Hypercube::new(16), CostModel::ncube2());
                let mut sim = ParallelSim::new(
                    machine,
                    SimConfig { scheme: Scheme::Spda, curve, ..Default::default() },
                );
                let _ = sim.run_iteration(&set.particles);
                sim.run_iteration(&set.particles).phases.total
            })
        });
    }
    g.finish();
}

/// The same run on different interconnects (simulated seconds differ; the
/// benchmark wall-clock measures simulation overhead).
fn bench_topology(c: &mut Criterion) {
    let set = dataset_scaled("g_160535", 0.02);
    fn run<T: Topology>(topo: T, set: &ParticleSet) -> f64 {
        let machine = Machine::new(topo, CostModel::ncube2());
        let mut sim = ParallelSim::new(machine, SimConfig::default());
        sim.run_iteration(&set.particles).phases.total
    }
    let mut g = c.benchmark_group("topology");
    g.bench_function("hypercube_p16", |b| b.iter(|| run(Hypercube::new(16), &set)));
    g.bench_function("mesh4x4", |b| b.iter(|| run(Mesh2D::new(4, 4, true), &set)));
    g.bench_function("fat_tree_p16", |b| b.iter(|| run(FatTree::cm5(16), &set)));
    g.bench_function("crossbar_p16", |b| b.iter(|| run(Crossbar::new(16), &set)));
    g.finish();
}

/// Oct-tree vs median-split binary tree ([18], §2): build cost and node
/// counts at equal leaf capacity.
fn bench_tree_variants(c: &mut Criterion) {
    let set = dataset_scaled("p_63192", 0.2);
    let mut g = c.benchmark_group("tree_variant");
    g.bench_function("oct_tree_build", |b| {
        b.iter(|| build(&set.particles, BuildParams::with_leaf_capacity(8)).len())
    });
    g.bench_function("binary_tree_build", |b| {
        b.iter(|| BinaryTree::build(&set.particles, 8).len())
    });
    let mac = BarnesHutMac::new(0.67);
    let oct = build(&set.particles, BuildParams::with_leaf_capacity(8));
    let bin = BinaryTree::build(&set.particles, 8);
    g.bench_function("oct_tree_eval_100", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in set.particles.iter().take(100) {
                acc +=
                    bhut_tree::potential_at(&oct, &set.particles, p.pos, Some(p.id), &mac, 1e-4).0;
            }
            acc
        })
    });
    g.bench_function("binary_tree_eval_100", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in set.particles.iter().take(100) {
                acc += bin.eval(&set.particles, p.pos, Some(p.id), &mac, 1e-4).0;
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_bin_size, bench_leaf_capacity, bench_ordering, bench_topology,
        bench_tree_variants
);
criterion_main!(ablations);
