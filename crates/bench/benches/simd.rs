//! Kernel-precision benchmarks for the vectorised force kernels: the
//! gathered slab kernels at each [`KernelPrecision`], plus the raw batch
//! M2P/P2P entry points, on the same Plummer slabs the grouped executor
//! produces. The committed end-to-end numbers live in `results/simd.json`
//! (produced by the `simd` bin); this group tracks the same kernels under
//! Criterion for statistically robust local comparisons.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use bhut_geom::{plummer, PlummerSpec};
use bhut_tree::build::{build, BuildParams};
use bhut_tree::group::{
    eval_gathered_monopole_masked, gather_group, leaf_schedule, resolve_mixed_tails,
    InteractionBuffers,
};
use bhut_tree::{accel_batch_m2p, BarnesHutMac, KernelPrecision};

const EPS: f64 = 1e-4;

fn bench_simd(c: &mut Criterion) {
    let mut g = c.benchmark_group("bench_simd");
    let set = plummer(PlummerSpec { n: 20_000, ..Default::default() });
    let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
    let mac = BarnesHutMac::new(0.67);
    let schedule = leaf_schedule(&tree);

    // Pre-gather every leaf once; the benchmark then times only the kernel
    // phase, which is what `results/simd.json` gates.
    let mut buffers: Vec<InteractionBuffers> = Vec::with_capacity(schedule.len());
    for &leaf in &schedule {
        let mut buf = InteractionBuffers::new();
        gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
        resolve_mixed_tails(&tree, &set.particles, leaf, &mac, &mut buf, None);
        buf.prepare_f32();
        buffers.push(buf);
    }

    for precision in [KernelPrecision::ScalarF64, KernelPrecision::F64, KernelPrecision::MixedF32] {
        g.bench_with_input(
            BenchmarkId::new("kernel_phase", format!("{precision:?}")),
            &precision,
            |b, &precision| {
                b.iter(|| {
                    let mut sink = 0.0f64;
                    for (&leaf, buf) in schedule.iter().zip(&buffers) {
                        eval_gathered_monopole_masked(
                            &tree,
                            &set.particles,
                            leaf,
                            &mac,
                            EPS,
                            precision,
                            buf,
                            None,
                            |_, phi, acc, _| sink += phi + acc.x,
                        );
                    }
                    sink
                })
            },
        );
    }

    // Raw batch M2P throughput on one representative slab, per precision.
    let slab =
        buffers.iter().max_by_key(|b| b.node_ids.len()).expect("schedule is non-empty for n=20k");
    let target = set.particles[0].pos;
    for precision in [KernelPrecision::ScalarF64, KernelPrecision::F64, KernelPrecision::MixedF32] {
        g.bench_with_input(
            BenchmarkId::new("batch_m2p", format!("{precision:?}")),
            &precision,
            |b, &precision| b.iter(|| slab.eval_m2p(black_box(target), EPS, precision)),
        );
    }
    let _ = accel_batch_m2p; // keep the public batch API linked into the bench
    g.finish();
}

criterion_group!(benches, bench_simd);
criterion_main!(benches);
