//! End-to-end scheme benchmarks: one simulated time-step of SPSA / SPDA /
//! DPDA on the simulated nCUBE2, and the real shared-memory executor for
//! comparison. Wall-clock here measures the simulator itself; the simulated
//! seconds (the paper's metric) are printed by the `tables` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bhut_core::balance::Scheme;
use bhut_core::{ParallelSim, SimConfig};
use bhut_geom::dataset_scaled;
use bhut_machine::{CostModel, Hypercube, Machine};
use bhut_threads::{Partitioning, ThreadConfig, ThreadSim};

fn bench_schemes(c: &mut Criterion) {
    let set = dataset_scaled("g_160535", 0.02);
    let mut g = c.benchmark_group("scheme_iteration_p16");
    for scheme in [Scheme::Spsa, Scheme::Spda, Scheme::Dpda] {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &scheme, |b, &scheme| {
            b.iter(|| {
                let machine = Machine::new(Hypercube::new(16), CostModel::ncube2());
                let mut sim = ParallelSim::new(machine, SimConfig { scheme, ..Default::default() });
                sim.run_iteration(&set.particles).phases.total
            })
        });
    }
    g.finish();
}

fn bench_threads(c: &mut Criterion) {
    let set = dataset_scaled("g_160535", 0.02);
    let mut g = c.benchmark_group("shared_memory_force");
    for (name, part) in [
        ("static", Partitioning::StaticBlocks),
        ("morton_zones", Partitioning::MortonZones),
        ("self_sched", Partitioning::SelfScheduling { block: 64 }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &part, |b, &part| {
            let mut sim = ThreadSim::new(ThreadConfig {
                threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
                partitioning: part,
                ..Default::default()
            });
            let _ = sim.compute_forces(&set.particles); // warm the zone weights
            b.iter(|| sim.compute_forces(&set.particles).stats.interactions())
        });
    }
    g.finish();
}

criterion_group!(
    name = schemes;
    config = Criterion::default().sample_size(10);
    targets = bench_schemes, bench_threads
);
criterion_main!(schemes);
