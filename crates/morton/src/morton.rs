//! Morton (Z-order) encoding in two and three dimensions.
//!
//! §3.3.2: "a Morton ordering is constructed by using the cluster
//! coordinates… The bits of the row and column are interleaved and the boxes
//! are labelled by the Morton number." 2-D keys interleave two 32-bit
//! coordinates into a `u64`; 3-D keys interleave three 21-bit coordinates
//! into a `u64` (63 bits), enough for cluster grids up to 2M³ — far beyond
//! the paper's 256×256.

/// Spread the low 32 bits of `x` so there is one empty bit between
/// consecutive bits (`..b3 b2 b1 b0` → `..b3 0 b2 0 b1 0 b0`).
#[inline]
fn part1by1(x: u32) -> u64 {
    let mut x = x as u64;
    x &= 0x0000_0000_ffff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`part1by1`]: compact every second bit.
#[inline]
fn compact1by1(x: u64) -> u32 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
    x as u32
}

/// Spread the low 21 bits of `x` with two empty bits between consecutive
/// bits.
#[inline]
fn part1by2(x: u32) -> u64 {
    let mut x = x as u64;
    x &= 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x001f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`part1by2`].
#[inline]
fn compact1by2(x: u64) -> u32 {
    let mut x = x & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x >> 4)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x >> 8)) & 0x001f_0000_ff00_00ff;
    x = (x | (x >> 16)) & 0x001f_0000_0000_ffff;
    x = (x | (x >> 32)) & 0x0000_0000_001f_ffff;
    x as u32
}

/// Interleave `(x, y)` into a 2-D Morton key. `x` occupies the even bits so
/// that, within each level, the child order is (x-low,y-low), (x-high,y-low),
/// (x-low,y-high), (x-high,y-high) — matching `Aabb::octant_of` bit 0 = x.
#[inline]
pub fn encode_2d(x: u32, y: u32) -> u64 {
    part1by1(x) | (part1by1(y) << 1)
}

/// Inverse of [`encode_2d`].
#[inline]
pub fn decode_2d(key: u64) -> (u32, u32) {
    (compact1by1(key), compact1by1(key >> 1))
}

/// Interleave `(x, y, z)` (21 bits each) into a 3-D Morton key.
///
/// # Panics
/// Debug-asserts that the coordinates fit in 21 bits.
#[inline]
pub fn encode_3d(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << 21) && y < (1 << 21) && z < (1 << 21));
    part1by2(x) | (part1by2(y) << 1) | (part1by2(z) << 2)
}

/// Inverse of [`encode_3d`].
#[inline]
pub fn decode_3d(key: u64) -> (u32, u32, u32) {
    (compact1by2(key), compact1by2(key >> 1), compact1by2(key >> 2))
}

/// The permutation of an `n×n` 2-D cluster grid in Morton order: element `k`
/// of the result is the `(col, row)` of the `k`-th cluster along the Z-curve.
/// This is the "sorted list" the SPDA scheme computes once up front.
pub fn morton_order_2d(n: u32) -> Vec<(u32, u32)> {
    let mut cells: Vec<(u32, u32)> = (0..n).flat_map(|y| (0..n).map(move |x| (x, y))).collect();
    cells.sort_by_key(|&(x, y)| encode_2d(x, y));
    cells
}

/// The permutation of an `n×n×n` 3-D cluster grid in Morton order.
pub fn morton_order_3d(n: u32) -> Vec<(u32, u32, u32)> {
    let mut cells: Vec<(u32, u32, u32)> =
        (0..n).flat_map(|z| (0..n).flat_map(move |y| (0..n).map(move |x| (x, y, z)))).collect();
    cells.sort_by_key(|&(x, y, z)| encode_3d(x, y, z));
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_2d_known_values() {
        assert_eq!(encode_2d(0, 0), 0);
        assert_eq!(encode_2d(1, 0), 0b01);
        assert_eq!(encode_2d(0, 1), 0b10);
        assert_eq!(encode_2d(1, 1), 0b11);
        assert_eq!(encode_2d(2, 3), 0b1110);
        assert_eq!(encode_2d(u32::MAX, u32::MAX), u64::MAX);
    }

    #[test]
    fn encode_3d_known_values() {
        assert_eq!(encode_3d(0, 0, 0), 0);
        assert_eq!(encode_3d(1, 0, 0), 0b001);
        assert_eq!(encode_3d(0, 1, 0), 0b010);
        assert_eq!(encode_3d(0, 0, 1), 0b100);
        assert_eq!(encode_3d(1, 1, 1), 0b111);
        assert_eq!(encode_3d(2, 0, 0), 0b001_000);
    }

    #[test]
    fn morton_order_2d_is_z_curve() {
        // 2×2 grid: Z order is (0,0), (1,0), (0,1), (1,1).
        assert_eq!(morton_order_2d(2), vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
        // 4×4: the first quadrant (2×2 block) comes first.
        let o = morton_order_2d(4);
        assert_eq!(&o[..4], &[(0, 0), (1, 0), (0, 1), (1, 1)]);
        assert_eq!(&o[4..8], &[(2, 0), (3, 0), (2, 1), (3, 1)]);
        assert_eq!(o.len(), 16);
    }

    #[test]
    fn morton_order_3d_is_octant_recursive() {
        let o = morton_order_3d(2);
        assert_eq!(
            o,
            vec![
                (0, 0, 0),
                (1, 0, 0),
                (0, 1, 0),
                (1, 1, 0),
                (0, 0, 1),
                (1, 0, 1),
                (0, 1, 1),
                (1, 1, 1)
            ]
        );
    }

    #[test]
    fn morton_order_is_a_permutation() {
        let o = morton_order_2d(8);
        let mut seen = [false; 64];
        for (x, y) in o {
            let idx = (y * 8 + x) as usize;
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    proptest! {
        #[test]
        fn roundtrip_2d(x: u32, y: u32) {
            prop_assert_eq!(decode_2d(encode_2d(x, y)), (x, y));
        }

        #[test]
        fn roundtrip_3d(x in 0u32..(1<<21), y in 0u32..(1<<21), z in 0u32..(1<<21)) {
            prop_assert_eq!(decode_3d(encode_3d(x, y, z)), (x, y, z));
        }

        #[test]
        fn morton_2d_monotone_in_each_axis(x in 0u32..u32::MAX, y: u32) {
            // Increasing one coordinate strictly increases the key.
            prop_assert!(encode_2d(x, y) < encode_2d(x + 1, y));
        }

        #[test]
        fn morton_3d_locality_block(x in 0u32..(1u32<<20), y in 0u32..(1u32<<20), z in 0u32..(1u32<<20)) {
            // All 8 cells of an aligned 2×2×2 block are contiguous in Z order.
            let (bx, by, bz) = (x & !1, y & !1, z & !1);
            let base = encode_3d(bx, by, bz);
            for dx in 0..2 { for dy in 0..2 { for dz in 0..2 {
                let k = encode_3d(bx + dx, by + dy, bz + dz);
                prop_assert!(k >= base && k < base + 8);
            }}}
        }
    }
}
