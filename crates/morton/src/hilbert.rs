//! Peano–Hilbert ordering.
//!
//! The Costzones scheme of Singh et al. (the shared-memory ancestor of DPDA,
//! §1 and §3.3.3) uses a Peano–Hilbert ordering; the paper's SPDA uses Morton
//! instead. We provide Hilbert indices so the `bench_ordering` ablation can
//! compare the two curve choices for cluster assignment: Hilbert has strictly
//! better worst-case locality (no long Z jumps) at a slightly higher
//! per-index cost.
//!
//! 2-D uses the classic rotation-based algorithm; 3-D uses Skilling's
//! transpose construction (J. Skilling, "Programming the Hilbert curve",
//! AIP Conf. Proc. 707, 2004).

/// Hilbert index of cell `(x, y)` on a `2^order × 2^order` grid.
pub fn hilbert_index_2d(mut x: u32, mut y: u32, order: u32) -> u64 {
    debug_assert!(order <= 32 && (order == 32 || (x < (1 << order) && y < (1 << order))));
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s: u32 = order;
    while s > 0 {
        s -= 1;
        rx = (x >> s) & 1;
        ry = (y >> s) & 1;
        d += (((3 * rx) ^ ry) as u64) << (2 * s);
        rot_2d(s, &mut x, &mut y, rx, ry);
    }
    d
}

/// `(x, y)` of the cell with Hilbert index `d` on a `2^order` grid
/// (inverse of [`hilbert_index_2d`]).
pub fn hilbert_xy_from_index_2d(d: u64, order: u32) -> (u32, u32) {
    let (mut x, mut y) = (0u32, 0u32);
    let mut t = d;
    for s in 0..order {
        let rx = (1 & (t / 2)) as u32;
        let ry = (1 & (t ^ rx as u64)) as u32;
        rot_2d(s, &mut x, &mut y, rx, ry);
        x += rx << s;
        y += ry << s;
        t /= 4;
    }
    (x, y)
}

/// Rotate/flip the quadrant of a sub-square appropriately (standard helper).
fn rot_2d(s: u32, x: &mut u32, y: &mut u32, rx: u32, ry: u32) {
    if ry == 0 {
        if rx == 1 {
            let m = if s == 0 { 0 } else { (1u32 << s) - 1 };
            *x = m.wrapping_sub(*x) & m;
            *y = m.wrapping_sub(*y) & m;
        }
        std::mem::swap(x, y);
    }
}

/// Hilbert index of cell `(x, y, z)` on a `2^order` cube, via Skilling's
/// transpose algorithm: convert axes to transposed Hilbert form, then
/// interleave.
pub fn hilbert_index_3d(x: u32, y: u32, z: u32, order: u32) -> u64 {
    debug_assert!(order <= 21);
    let mut axes = [x, y, z];
    axes_to_transpose(&mut axes, order);
    // Interleave bit-planes: bit b of axes[i] becomes bit (3*b + (2 - i)).
    let mut key: u64 = 0;
    for b in 0..order {
        for (i, &a) in axes.iter().enumerate() {
            let bit = ((a >> b) & 1) as u64;
            key |= bit << (3 * b + (2 - i as u32));
        }
    }
    key
}

/// Skilling's AxestoTranspose for n=3 dimensions.
fn axes_to_transpose(x: &mut [u32; 3], bits: u32) {
    if bits == 0 {
        return;
    }
    let n = 3;
    let mut q: u32 = 1 << (bits - 1);
    // Inverse undo
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t: u32 = 0;
    q = 1 << (bits - 1);
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hilbert_2d_order1() {
        // The order-1 curve visits (0,0), (0,1), (1,1), (1,0).
        assert_eq!(hilbert_index_2d(0, 0, 1), 0);
        assert_eq!(hilbert_index_2d(0, 1, 1), 1);
        assert_eq!(hilbert_index_2d(1, 1, 1), 2);
        assert_eq!(hilbert_index_2d(1, 0, 1), 3);
    }

    #[test]
    fn hilbert_2d_is_a_permutation_and_adjacent() {
        let order = 4;
        let n = 1u32 << order;
        let mut cells: Vec<(u32, u32)> = (0..n).flat_map(|y| (0..n).map(move |x| (x, y))).collect();
        cells.sort_by_key(|&(x, y)| hilbert_index_2d(x, y, order));
        // Consecutive cells along the curve are grid neighbors — the key
        // locality property Morton lacks.
        for w in cells.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            let d = (x0 as i64 - x1 as i64).abs() + (y0 as i64 - y1 as i64).abs();
            assert_eq!(d, 1, "non-adjacent step {:?} -> {:?}", w[0], w[1]);
        }
        // Permutation: indices are 0..n².
        let idx: Vec<u64> = cells.iter().map(|&(x, y)| hilbert_index_2d(x, y, order)).collect();
        assert_eq!(idx, (0..(n as u64 * n as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn hilbert_3d_is_a_permutation_and_adjacent() {
        let order = 3;
        let n = 1u32 << order;
        let mut cells: Vec<(u32, u32, u32)> =
            (0..n).flat_map(|z| (0..n).flat_map(move |y| (0..n).map(move |x| (x, y, z)))).collect();
        cells.sort_by_key(|&(x, y, z)| hilbert_index_3d(x, y, z, order));
        for w in cells.windows(2) {
            let ((x0, y0, z0), (x1, y1, z1)) = (w[0], w[1]);
            let d = (x0 as i64 - x1 as i64).abs()
                + (y0 as i64 - y1 as i64).abs()
                + (z0 as i64 - z1 as i64).abs();
            assert_eq!(d, 1, "non-adjacent 3d step {:?} -> {:?}", w[0], w[1]);
        }
        let idx: Vec<u64> =
            cells.iter().map(|&(x, y, z)| hilbert_index_3d(x, y, z, order)).collect();
        assert_eq!(idx, (0..(n as u64).pow(3)).collect::<Vec<_>>());
    }

    proptest! {
        #[test]
        fn hilbert_2d_roundtrip(x in 0u32..(1<<10), y in 0u32..(1<<10)) {
            let d = hilbert_index_2d(x, y, 10);
            prop_assert_eq!(hilbert_xy_from_index_2d(d, 10), (x, y));
        }

        #[test]
        fn hilbert_2d_in_range(x in 0u32..(1<<8), y in 0u32..(1<<8)) {
            prop_assert!(hilbert_index_2d(x, y, 8) < (1u64 << 16));
        }

        #[test]
        fn hilbert_3d_in_range(x in 0u32..(1<<7), y in 0u32..(1<<7), z in 0u32..(1<<7)) {
            prop_assert!(hilbert_index_3d(x, y, z, 7) < (1u64 << 21));
        }
    }
}
