//! Gray codes and the SPSA modular subdomain→processor mapping.
//!
//! §3.3.1: "For a two-dimensional simulation running on a d-dimensional
//! hypercube, subdomain (i, j) is assigned to processor
//! (gray(i, d/2), gray(j, d/2)). Here, gray(p, q) represents the p-th entry
//! in the gray-code table formed from q bits." The gray-code embedding maps
//! a 2-D (or 3-D) mesh of subdomains onto hypercube node labels so that
//! neighboring subdomains land on neighboring hypercube nodes — which is what
//! makes the tree-merge communication of Fig. 5c/d nearest-neighbor.

/// The `p`-th entry of the reflected binary gray-code table on `q` bits.
/// `p` is taken modulo `2^q`, which is exactly the *modular* assignment of
/// the paper: with `r > p` subdomains, subdomain indices wrap around the
/// processor grid.
#[inline]
pub fn gray_code(p: u64, q: u32) -> u64 {
    let m = if q >= 64 { u64::MAX } else { (1u64 << q) - 1 };
    let p = p & m;
    p ^ (p >> 1)
}

/// Inverse gray code: the index of `g` in the `q`-bit gray-code table.
#[inline]
pub fn gray_code_inverse(g: u64, q: u32) -> u64 {
    let m = if q >= 64 { u64::MAX } else { (1u64 << q) - 1 };
    let mut g = g & m;
    let mut p = g;
    while g != 0 {
        g >>= 1;
        p ^= g;
    }
    p
}

/// SPSA mapping for a 2-D `c×c` subdomain grid onto a hypercube of dimension
/// `d` (`p = 2^d` processors, `d` even split as `d/2 + d/2` or odd split as
/// `⌈d/2⌉ + ⌊d/2⌋` between x and y): returns the processor label whose
/// high bits come from the row gray code and low bits from the column.
#[inline]
pub fn subdomain_to_processor_2d(i: u64, j: u64, d: u32) -> u64 {
    let dx = d.div_ceil(2);
    let dy = d / 2;
    (gray_code(j, dy) << dx) | gray_code(i, dx)
}

/// SPSA mapping for a 3-D subdomain grid onto a `d`-dimensional hypercube;
/// the dimensions are split as evenly as possible (`x` gets the remainder
/// first).
#[inline]
pub fn subdomain_to_processor_3d(i: u64, j: u64, k: u64, d: u32) -> u64 {
    let dx = d.div_ceil(3);
    let dy = (d + 1) / 3;
    let dz = d / 3;
    (gray_code(k, dz) << (dx + dy)) | (gray_code(j, dy) << dx) | gray_code(i, dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gray_code_table_3bit() {
        let table: Vec<u64> = (0..8).map(|p| gray_code(p, 3)).collect();
        assert_eq!(table, vec![0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100]);
    }

    #[test]
    fn successive_entries_differ_by_one_bit() {
        for q in 1..=6u32 {
            let n = 1u64 << q;
            for p in 0..n {
                let a = gray_code(p, q);
                let b = gray_code((p + 1) % n, q); // table is cyclic
                assert_eq!((a ^ b).count_ones(), 1, "q={q} p={p}");
            }
        }
    }

    #[test]
    fn modular_wraparound() {
        // p beyond the table wraps: entry 9 of a 3-bit table == entry 1.
        assert_eq!(gray_code(9, 3), gray_code(1, 3));
    }

    #[test]
    fn mapping_2d_is_bijective_on_grid() {
        // A 4×4 grid on a 4-dim hypercube (16 procs) must hit every label.
        let mut seen = [false; 16];
        for i in 0..4u64 {
            for j in 0..4u64 {
                let p = subdomain_to_processor_2d(i, j, 4) as usize;
                assert!(p < 16);
                assert!(!seen[p], "duplicate label {p}");
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn mapping_2d_neighbors_are_hypercube_neighbors() {
        // Adjacent subdomains differ in exactly one hypercube bit.
        for i in 0..4u64 {
            for j in 0..4u64 {
                let p = subdomain_to_processor_2d(i, j, 4);
                if i + 1 < 4 {
                    let q = subdomain_to_processor_2d(i + 1, j, 4);
                    assert_eq!((p ^ q).count_ones(), 1);
                }
                if j + 1 < 4 {
                    let q = subdomain_to_processor_2d(i, j + 1, 4);
                    assert_eq!((p ^ q).count_ones(), 1);
                }
            }
        }
    }

    #[test]
    fn mapping_2d_odd_dimension() {
        // d=5: 32 processors, 8 columns × 4 rows.
        let mut seen = std::collections::HashSet::new();
        for i in 0..8u64 {
            for j in 0..4u64 {
                let p = subdomain_to_processor_2d(i, j, 5);
                assert!(p < 32);
                assert!(seen.insert(p));
            }
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn mapping_3d_is_bijective() {
        // d=6: 64 processors as 4×4×4.
        let mut seen = std::collections::HashSet::new();
        for i in 0..4u64 {
            for j in 0..4u64 {
                for k in 0..4u64 {
                    let p = subdomain_to_processor_3d(i, j, k, 6);
                    assert!(p < 64);
                    assert!(seen.insert(p));
                }
            }
        }
        assert_eq!(seen.len(), 64);
    }

    proptest! {
        #[test]
        fn gray_roundtrip(p: u64, q in 1u32..=63) {
            let m = (1u64 << q) - 1;
            prop_assert_eq!(gray_code_inverse(gray_code(p, q), q), p & m);
        }

        #[test]
        fn gray_is_a_permutation_sample(q in 1u32..=10) {
            let n = 1u64 << q;
            let mut seen = vec![false; n as usize];
            for p in 0..n {
                let g = gray_code(p, q) as usize;
                prop_assert!(!seen[g]);
                seen[g] = true;
            }
        }
    }
}
