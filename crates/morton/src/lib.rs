//! Spatial orderings for parallel treecodes (substrate **S2**).
//!
//! Three ingredients of the paper's load-balancing machinery live here:
//!
//! * [`morton`] — Morton (Z-curve) keys in 2-D and 3-D. SPDA (§3.3.2) orders
//!   the static clusters along the Morton curve built from *cluster*
//!   coordinates (unlike Warren & Salmon, who sort per-particle keys).
//! * [`gray`] — gray-code tables and the modular subdomain→processor mapping
//!   of SPSA (§3.3.1): subdomain `(i, j)` goes to processor
//!   `(gray(i, d/2), gray(j, d/2))` on a `d`-dimensional hypercube.
//! * [`hilbert`] — the Peano–Hilbert ordering used by the Costzones scheme of
//!   Singh et al., provided for comparison (`bench_ordering`).
//! * [`keys`] — Warren–Salmon style *node path keys* (level-prefixed Morton
//!   paths); the function-shipping protocol stamps each branch node with one
//!   so remote processors can name it in O(1).

pub mod gray;
pub mod hilbert;
pub mod keys;
pub mod morton;

pub use gray::{
    gray_code, gray_code_inverse, subdomain_to_processor_2d, subdomain_to_processor_3d,
};
pub use hilbert::{hilbert_index_2d, hilbert_index_3d, hilbert_xy_from_index_2d};
pub use keys::NodeKey;
pub use morton::{decode_2d, decode_3d, encode_2d, encode_3d, morton_order_2d, morton_order_3d};
