//! Warren–Salmon node path keys.
//!
//! §3.2: every branch node carries "a unique key" so a remote processor can
//! name it; keys live either in "a hashed list of pointers" or a sorted
//! table searched by binary search (§4.2.3). A [`NodeKey`] encodes the path
//! from the root: a leading 1 *placeholder bit* followed by 3 bits per level
//! (the octant index at each descent). The placeholder disambiguates
//! depth — `0b1_000` (child 0 of root) differs from `0b1` (root) — exactly
//! the construction of Warren & Salmon's hashed oct-tree.

use std::fmt;

/// A path key identifying one node of an oct-tree (up to 21 levels deep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeKey(u64);

impl NodeKey {
    /// The root of the tree.
    pub const ROOT: NodeKey = NodeKey(1);

    /// Construct from a raw key value (must have its placeholder bit set).
    pub fn from_raw(raw: u64) -> Option<NodeKey> {
        (raw != 0 && (raw.leading_zeros().is_multiple_of(3) || raw == 1) && {
            // placeholder must be at a bit position ≡ 0 (mod 3) from the low
            // end: positions 0, 3, 6, ...
            let top = 63 - raw.leading_zeros();
            top.is_multiple_of(3)
        })
        .then_some(NodeKey(raw))
    }

    /// Raw 64-bit representation (what travels in messages).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Key of this node's `oct`-th child (`oct < 8`).
    ///
    /// # Panics
    /// Debug-asserts `oct < 8` and that the tree is not deeper than 21
    /// levels.
    #[inline]
    pub fn child(self, oct: u8) -> NodeKey {
        debug_assert!(oct < 8);
        debug_assert!(self.level() < 21, "key overflow at level {}", self.level());
        NodeKey((self.0 << 3) | oct as u64)
    }

    /// Key of the parent; `None` for the root.
    #[inline]
    pub fn parent(self) -> Option<NodeKey> {
        (self != Self::ROOT).then_some(NodeKey(self.0 >> 3))
    }

    /// Depth below the root (root = 0).
    #[inline]
    pub fn level(self) -> u32 {
        (63 - self.0.leading_zeros()) / 3
    }

    /// The octant taken at the last descent; `None` for the root.
    #[inline]
    pub fn last_octant(self) -> Option<u8> {
        (self != Self::ROOT).then_some((self.0 & 0b111) as u8)
    }

    /// Whether `self` is an ancestor of (or equal to) `other`.
    pub fn is_ancestor_of(self, other: NodeKey) -> bool {
        let dl = other.level().checked_sub(self.level());
        match dl {
            Some(shift) => (other.0 >> (3 * shift)) == self.0,
            None => false,
        }
    }

    /// The octant path from the root to this node, outermost first.
    pub fn path(self) -> Vec<u8> {
        let l = self.level();
        (0..l).rev().map(|i| ((self.0 >> (3 * i)) & 0b111) as u8).collect()
    }

    /// Rebuild a key from an octant path.
    pub fn from_path(path: &[u8]) -> NodeKey {
        path.iter().fold(Self::ROOT, |k, &oct| k.child(oct))
    }
}

impl fmt::Display for NodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "root")?;
        for oct in self.path() {
            write!(f, ".{oct}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn root_properties() {
        assert_eq!(NodeKey::ROOT.level(), 0);
        assert_eq!(NodeKey::ROOT.parent(), None);
        assert_eq!(NodeKey::ROOT.last_octant(), None);
        assert_eq!(NodeKey::ROOT.raw(), 1);
        assert_eq!(NodeKey::ROOT.to_string(), "root");
    }

    #[test]
    fn child_parent_roundtrip() {
        let k = NodeKey::ROOT.child(5).child(0).child(7);
        assert_eq!(k.level(), 3);
        assert_eq!(k.last_octant(), Some(7));
        assert_eq!(k.parent().unwrap().last_octant(), Some(0));
        assert_eq!(k.path(), vec![5, 0, 7]);
        assert_eq!(NodeKey::from_path(&[5, 0, 7]), k);
        assert_eq!(k.to_string(), "root.5.0.7");
    }

    #[test]
    fn placeholder_disambiguates_depth() {
        // child 0 of root must differ from root itself.
        let c0 = NodeKey::ROOT.child(0);
        assert_ne!(c0, NodeKey::ROOT);
        assert_eq!(c0.level(), 1);
        // ...and child 0 of child 0 differs again.
        assert_ne!(c0.child(0), c0);
    }

    #[test]
    fn ancestry() {
        let a = NodeKey::ROOT.child(3);
        let b = a.child(1).child(6);
        assert!(NodeKey::ROOT.is_ancestor_of(b));
        assert!(a.is_ancestor_of(b));
        assert!(a.is_ancestor_of(a));
        assert!(!b.is_ancestor_of(a));
        assert!(!NodeKey::ROOT.child(2).is_ancestor_of(b));
    }

    #[test]
    fn keys_are_unique_across_small_tree() {
        // Enumerate every node in a full 4-level oct-tree; all keys distinct.
        let mut keys = std::collections::HashSet::new();
        fn walk(k: NodeKey, depth: u32, keys: &mut std::collections::HashSet<u64>) {
            assert!(keys.insert(k.raw()), "duplicate {k}");
            if depth > 0 {
                for oct in 0..8 {
                    walk(k.child(oct), depth - 1, keys);
                }
            }
        }
        walk(NodeKey::ROOT, 4, &mut keys);
        assert_eq!(keys.len(), 1 + 8 + 64 + 512 + 4096);
    }

    #[test]
    fn from_raw_validation() {
        assert_eq!(NodeKey::from_raw(0), None);
        assert_eq!(NodeKey::from_raw(1), Some(NodeKey::ROOT));
        assert_eq!(NodeKey::from_raw(0b1_101), Some(NodeKey::ROOT.child(5)));
        // placeholder bit in an invalid position (level fraction)
        assert_eq!(NodeKey::from_raw(0b10), None);
        assert_eq!(NodeKey::from_raw(0b100), None);
    }

    proptest! {
        #[test]
        fn path_roundtrip(path in proptest::collection::vec(0u8..8, 0..21)) {
            let k = NodeKey::from_path(&path);
            prop_assert_eq!(k.path(), path.clone());
            prop_assert_eq!(k.level() as usize, path.len());
        }

        #[test]
        fn sibling_keys_sort_by_octant(path in proptest::collection::vec(0u8..8, 0..20), a in 0u8..8, b in 0u8..8) {
            let parent = NodeKey::from_path(&path);
            let (ka, kb) = (parent.child(a), parent.child(b));
            prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
        }
    }
}
