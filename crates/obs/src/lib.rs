//! Phase-level observability for real and simulated runs (system **S11**).
//!
//! The paper's entire argument is phase accounting — tree construction vs.
//! force computation vs. communication per time-step (Tables 3–7) — so the
//! repo needs the same lens on its *real* execution path, not just the
//! virtual-clock `machine` simulator. This crate provides:
//!
//! * [`Span`] — the **one** span schema shared by simulated traces
//!   (`bhut_machine::Trace` re-uses this type) and wall-clock profiles, so
//!   both plot on a single Gantt chart,
//! * [`Counters`] / [`SharedCounters`] — plain and per-thread atomic work
//!   counters (interactions, nodes opened, group accept/reject/mixed
//!   classifications, P2P vs. M2P work, message traffic),
//! * [`StepProfile`] — a per-time-step bundle of spans + counters with
//!   utilization / imbalance / phase-share queries, serializable to JSON,
//! * [`now`] / [`Stopwatch`] — a process-epoch wall clock that the `record`
//!   feature (default on) compiles down to a constant when disabled, erasing
//!   all instrumentation cost.
//!
//! Spans carry `f64` seconds: wall-clock seconds since an arbitrary
//! per-profile origin on the real path, virtual machine seconds on the
//! simulated path. Only relative placement matters for plotting.

use serde::{Deserialize, Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Canonical phase names used by the instrumented crates. Free-form strings
/// are allowed everywhere; these constants just keep the spelling consistent
/// between the executor, the driver, and the plotting side.
pub mod phase {
    /// Octree (and multipole) construction.
    pub const BUILD: &str = "build";
    /// Grouped tree walk: MAC classification and slab gathering.
    pub const WALK: &str = "walk";
    /// Batched M2P/P2P kernels plus mixed-frontier replays.
    pub const KERNEL: &str = "kernel";
    /// Fused walk+kernel evaluation (the per-particle reference path).
    pub const EVAL: &str = "eval";
    /// Main-thread scatter of per-worker staged results.
    pub const SCATTER: &str = "scatter";
    /// Simulated: local tree construction (includes partitioning).
    pub const LOCAL_TREE: &str = "local_tree";
    /// Simulated: hierarchical branch exchange / tree merge.
    pub const TREE_MERGE: &str = "tree_merge";
    /// Simulated: all-to-all broadcast of the top of the tree.
    pub const BROADCAST: &str = "broadcast";
    /// Force computation (both paths).
    pub const FORCE: &str = "force";
    /// Simulated: load balancing (SPDA remap / DPDA costzones).
    pub const LOAD_BALANCE: &str = "load_balance";
    /// Multi-process: all-gather of owned particle state (the real-transport
    /// analog of tree merge + broadcast).
    pub const EXCHANGE: &str = "exchange";
    /// Multi-process: leapfrog kick+drift of the owned particles.
    pub const UPDATE: &str = "update";
    /// Multi-process: writing a per-rank checkpoint shard to disk.
    pub const CHECKPOINT: &str = "checkpoint";
    /// Supervisor: detecting a failure, tearing the mesh down and
    /// re-launching from the last complete checkpoint epoch.
    pub const RECOVERY: &str = "recovery";
    /// Query server: a worker blocked waiting for requests to coalesce.
    pub const SERVE_WAIT: &str = "serve_wait";
    /// Query server: evaluating a coalesced batch against a pinned epoch.
    pub const SERVE_EVAL: &str = "serve_eval";
    /// Query server: encoding and writing result frames back to clients.
    pub const SERVE_REPLY: &str = "serve_reply";
    /// Simulation side: freezing and publishing a tree epoch to the store.
    pub const EPOCH_PUBLISH: &str = "epoch_publish";
}

/// Query-service counters (S11 schema, S15 producer): request/batch flow,
/// backpressure, and epoch freshness for one serving window. The server
/// merges per-worker instances the same way force counters merge, and the
/// totals ride along in [`StepProfile::serve`] so one JSON row prices a
/// serving run next to its simulation phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeCounters {
    /// Query points evaluated (after coalescing; the work unit).
    pub queries: u64,
    /// Client requests accepted into the queue.
    pub accepted: u64,
    /// Client requests rejected with retry-after (queue at capacity).
    pub rejected: u64,
    /// Coalesced batches evaluated (each pins one epoch).
    pub batches: u64,
    /// High-water mark of queued requests.
    pub queue_depth_peak: u64,
    /// Tree epochs published by the simulation side.
    pub epochs_published: u64,
    /// Tree epochs fully retired (dropped after their last pin).
    pub epochs_retired: u64,
    /// Epoch lag (published generation minus pinned generation) of the most
    /// recent batch.
    pub epoch_lag_last: u64,
    /// Worst epoch lag observed by any batch.
    pub epoch_lag_max: u64,
}

impl ServeCounters {
    pub fn merge(&mut self, o: &ServeCounters) {
        self.queries += o.queries;
        self.accepted += o.accepted;
        self.rejected += o.rejected;
        self.batches += o.batches;
        self.queue_depth_peak = self.queue_depth_peak.max(o.queue_depth_peak);
        self.epochs_published = self.epochs_published.max(o.epochs_published);
        self.epochs_retired = self.epochs_retired.max(o.epochs_retired);
        self.epoch_lag_last = o.epoch_lag_last;
        self.epoch_lag_max = self.epoch_lag_max.max(o.epoch_lag_max);
    }
}

/// Fault-tolerance counters (S11 schema): injected faults on one side,
/// recovery actions on the other. Ranks count what they inject and the
/// checkpoints they write; the supervisor counts respawns, degraded ranks
/// and rolled-back steps, then merges the rank-side counters in so one
/// struct prices a whole recovered run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Injected rank kills (process exits or simulated transport deaths).
    pub kills: u64,
    /// Injected wedged reads (a rank stops draining a stream).
    pub wedges: u64,
    /// Injected message delays.
    pub delays: u64,
    /// Injected dropped sends.
    pub drops: u64,
    /// Checkpoint shards written.
    pub checkpoints: u64,
    /// Supervisor re-launch attempts after a failure.
    pub respawns: u64,
    /// Ranks removed by `--degrade` shrink-and-continue recoveries.
    pub degraded_ranks: u64,
    /// Steps re-executed because recovery rolled back to a checkpoint.
    pub rollback_steps: u64,
}

impl FaultCounters {
    /// Total faults injected, of any kind.
    pub fn faults_injected(&self) -> u64 {
        self.kills + self.wedges + self.delays + self.drops
    }

    pub fn merge(&mut self, o: &FaultCounters) {
        self.kills += o.kills;
        self.wedges += o.wedges;
        self.delays += o.delays;
        self.drops += o.drops;
        self.checkpoints += o.checkpoints;
        self.respawns += o.respawns;
        self.degraded_ranks += o.degraded_ranks;
        self.rollback_steps += o.rollback_steps;
    }
}

/// One busy interval of one worker (real thread or virtual processor).
///
/// This is the single span schema of the workspace:
/// `bhut_machine::trace::Span` is a re-export of this type, so a simulated
/// trace and a real [`StepProfile`] serialize to the same JSON shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Thread index (real path) or processor rank (simulated path).
    pub rank: usize,
    /// BSP superstep (simulated) or phase sequence number (real).
    pub superstep: u64,
    /// Interval start, seconds (wall clock or virtual clock).
    pub start: f64,
    /// Interval end, seconds.
    pub end: f64,
    /// Messages sent during the interval (0 on the shared-memory path).
    pub sent: u64,
    /// Phase label; see [`phase`] for the canonical names. Empty means
    /// "unclassified" (e.g. a raw BSP superstep).
    pub phase: String,
}

impl Span {
    pub fn new(rank: usize, superstep: u64, phase: &str, start: f64, end: f64) -> Self {
        Span { rank, superstep, start, end, sent: 0, phase: phase.to_string() }
    }

    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Work counters for one step (or one worker's share of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Counters {
    /// Particle–particle interactions (direct sums).
    pub p2p: u64,
    /// Particle–node interactions (MAC-accepted multipole evaluations).
    pub m2p: u64,
    /// Multipole acceptance tests charged.
    pub mac_tests: u64,
    /// Internal nodes expanded during group walks.
    pub nodes_opened: u64,
    /// Group-MAC classifications that accepted the node for every member.
    pub group_accept: u64,
    /// Group-MAC classifications that rejected the node for every member.
    pub group_reject: u64,
    /// Group-MAC classifications that straddled the acceptance boundary.
    pub group_mixed: u64,
    /// Particles shipped to remote processors (simulated path).
    pub requests: u64,
    /// Messages sent (bin traffic; simulated path).
    pub messages: u64,
    /// Words sent (bin traffic; simulated path).
    pub words: u64,
    /// SIMD kernel lane slots processed (padded slab length × targets);
    /// equals `lane_useful` on the scalar kernel path.
    pub lane_slots: u64,
    /// Lane slots that carried real sources rather than padding sentinels.
    pub lane_useful: u64,
    /// Interaction-list cache replays (block substeps that skipped the walk).
    pub list_hits: u64,
    /// Interaction-list cache misses (gathers that walked the tree).
    pub list_misses: u64,
    /// Bytes held by the interaction-list caches when the step finished.
    pub list_bytes: u64,
}

// Hand-written for the same reason as [`StepProfile`]: the vendored serde
// derive rejects missing fields, so a derived impl would invalidate every
// counter JSON committed before a field existed. Every field is optional and
// defaults to zero.
impl Deserialize for Counters {
    fn from_value(v: &Value) -> Result<Self, String> {
        fn opt(v: &Value, key: &str) -> Result<u64, String> {
            match v.get_field(key) {
                Some(x) => u64::from_value(x),
                None => Ok(0),
            }
        }
        Ok(Counters {
            p2p: opt(v, "p2p")?,
            m2p: opt(v, "m2p")?,
            mac_tests: opt(v, "mac_tests")?,
            nodes_opened: opt(v, "nodes_opened")?,
            group_accept: opt(v, "group_accept")?,
            group_reject: opt(v, "group_reject")?,
            group_mixed: opt(v, "group_mixed")?,
            requests: opt(v, "requests")?,
            messages: opt(v, "messages")?,
            words: opt(v, "words")?,
            lane_slots: opt(v, "lane_slots")?,
            lane_useful: opt(v, "lane_useful")?,
            list_hits: opt(v, "list_hits")?,
            list_misses: opt(v, "list_misses")?,
            list_bytes: opt(v, "list_bytes")?,
        })
    }
}

impl Counters {
    /// Total force computations in the paper's sense (the `F` of
    /// Tables 1/4): particle–particle plus particle–node.
    pub fn interactions(&self) -> u64 {
        self.p2p + self.m2p
    }

    /// Fraction of processed kernel lane slots carrying real sources
    /// (`lane_useful / lane_slots`); 1.0 when no lanes were counted.
    pub fn lane_utilization(&self) -> f64 {
        if self.lane_slots == 0 {
            1.0
        } else {
            self.lane_useful as f64 / self.lane_slots as f64
        }
    }

    /// Fraction of leaf gathers served by interaction-list replay
    /// (`list_hits / (list_hits + list_misses)`); 0.0 when reuse never ran.
    pub fn list_hit_rate(&self) -> f64 {
        let total = self.list_hits + self.list_misses;
        if total == 0 {
            0.0
        } else {
            self.list_hits as f64 / total as f64
        }
    }

    pub fn merge(&mut self, o: &Counters) {
        self.p2p += o.p2p;
        self.m2p += o.m2p;
        self.mac_tests += o.mac_tests;
        self.nodes_opened += o.nodes_opened;
        self.group_accept += o.group_accept;
        self.group_reject += o.group_reject;
        self.group_mixed += o.group_mixed;
        self.requests += o.requests;
        self.messages += o.messages;
        self.words += o.words;
        self.lane_slots += o.lane_slots;
        self.lane_useful += o.lane_useful;
        self.list_hits += o.list_hits;
        self.list_misses += o.list_misses;
        self.list_bytes += o.list_bytes;
    }
}

/// Per-thread atomic counter slot. Each worker owns one slot and bumps it
/// with relaxed adds (uncontended); the coordinating thread snapshots after
/// the join.
#[derive(Debug, Default)]
pub struct SharedCounters {
    p2p: AtomicU64,
    m2p: AtomicU64,
    mac_tests: AtomicU64,
    nodes_opened: AtomicU64,
    group_accept: AtomicU64,
    group_reject: AtomicU64,
    group_mixed: AtomicU64,
    requests: AtomicU64,
    messages: AtomicU64,
    words: AtomicU64,
    lane_slots: AtomicU64,
    lane_useful: AtomicU64,
    list_hits: AtomicU64,
    list_misses: AtomicU64,
    list_bytes: AtomicU64,
}

impl SharedCounters {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn reset(&self) {
        for a in [
            &self.p2p,
            &self.m2p,
            &self.mac_tests,
            &self.nodes_opened,
            &self.group_accept,
            &self.group_reject,
            &self.group_mixed,
            &self.requests,
            &self.messages,
            &self.words,
            &self.lane_slots,
            &self.lane_useful,
            &self.list_hits,
            &self.list_misses,
            &self.list_bytes,
        ] {
            a.store(0, Ordering::Relaxed);
        }
    }

    /// Accumulate `c` into this slot (relaxed; single-writer by convention).
    pub fn add(&self, c: &Counters) {
        self.p2p.fetch_add(c.p2p, Ordering::Relaxed);
        self.m2p.fetch_add(c.m2p, Ordering::Relaxed);
        self.mac_tests.fetch_add(c.mac_tests, Ordering::Relaxed);
        self.nodes_opened.fetch_add(c.nodes_opened, Ordering::Relaxed);
        self.group_accept.fetch_add(c.group_accept, Ordering::Relaxed);
        self.group_reject.fetch_add(c.group_reject, Ordering::Relaxed);
        self.group_mixed.fetch_add(c.group_mixed, Ordering::Relaxed);
        self.requests.fetch_add(c.requests, Ordering::Relaxed);
        self.messages.fetch_add(c.messages, Ordering::Relaxed);
        self.words.fetch_add(c.words, Ordering::Relaxed);
        self.lane_slots.fetch_add(c.lane_slots, Ordering::Relaxed);
        self.lane_useful.fetch_add(c.lane_useful, Ordering::Relaxed);
        self.list_hits.fetch_add(c.list_hits, Ordering::Relaxed);
        self.list_misses.fetch_add(c.list_misses, Ordering::Relaxed);
        self.list_bytes.fetch_add(c.list_bytes, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> Counters {
        Counters {
            p2p: self.p2p.load(Ordering::Relaxed),
            m2p: self.m2p.load(Ordering::Relaxed),
            mac_tests: self.mac_tests.load(Ordering::Relaxed),
            nodes_opened: self.nodes_opened.load(Ordering::Relaxed),
            group_accept: self.group_accept.load(Ordering::Relaxed),
            group_reject: self.group_reject.load(Ordering::Relaxed),
            group_mixed: self.group_mixed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            words: self.words.load(Ordering::Relaxed),
            lane_slots: self.lane_slots.load(Ordering::Relaxed),
            lane_useful: self.lane_useful.load(Ordering::Relaxed),
            list_hits: self.list_hits.load(Ordering::Relaxed),
            list_misses: self.list_misses.load(Ordering::Relaxed),
            list_bytes: self.list_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Seconds since the process-wide epoch. With the `record` feature disabled
/// this is a constant `0.0` — every span collapses to zero width and the
/// clock read disappears from the binary.
#[cfg(feature = "record")]
pub fn now() -> f64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Erased clock: always `0.0` (the `record` feature is off).
#[cfg(not(feature = "record"))]
pub fn now() -> f64 {
    0.0
}

/// Whether phase timing is compiled in.
pub const RECORDING: bool = cfg!(feature = "record");

/// A tiny split timer over [`now`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    last: f64,
}

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch { last: now() }
    }

    /// Seconds since start/last lap.
    pub fn elapsed(&self) -> f64 {
        now() - self.last
    }

    /// Seconds since the last lap, and reset the lap point.
    pub fn lap(&mut self) -> f64 {
        let t = now();
        let d = t - self.last;
        self.last = t;
        d
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// One time-step's phase profile: spans plus per-worker and total counters.
///
/// Real runs fill `spans` with wall-clock intervals relative to the step
/// start; simulated runs fill them with virtual-clock intervals. Both use
/// the same schema, so one plotting script draws either.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StepProfile {
    /// Time-step number (0 when profiled outside a simulation).
    pub step: u64,
    /// Worker (thread or processor) count.
    pub threads: usize,
    /// Wall-clock seconds of the whole step (0 on purely virtual profiles).
    pub wall_s: f64,
    pub spans: Vec<Span>,
    /// Counters per worker, indexed by rank (may be empty on the simulated
    /// path, which only reports totals).
    pub per_worker: Vec<Counters>,
    pub totals: Counters,
    /// Per-rung population and force-evaluation counters, filled by the
    /// block-timestep driver (empty on global-dt steps; index = rung).
    pub rungs: Vec<RungCounters>,
    /// Rung promotions plus demotions during the step (0 on global steps).
    pub rung_migrations: u64,
    /// Query-service counters, filled only by `bhut-serve` runs.
    pub serve: Option<ServeCounters>,
}

// Hand-written so fields added after a baseline was committed default
// instead of failing the parse — the vendored serde derive rejects missing
// fields, which would invalidate every pre-S15 profile JSON on disk.
impl Deserialize for StepProfile {
    fn from_value(v: &Value) -> Result<Self, String> {
        fn opt<T: Deserialize + Default>(v: &Value, key: &str) -> Result<T, String> {
            match v.get_field(key) {
                Some(x) => T::from_value(x),
                None => Ok(T::default()),
            }
        }
        let req = |key: &str| {
            v.get_field(key).ok_or_else(|| format!("missing field `{key}` in StepProfile"))
        };
        Ok(StepProfile {
            step: u64::from_value(req("step")?)?,
            threads: usize::from_value(req("threads")?)?,
            wall_s: f64::from_value(req("wall_s")?)?,
            spans: Vec::<Span>::from_value(req("spans")?)?,
            per_worker: Vec::<Counters>::from_value(req("per_worker")?)?,
            totals: Counters::from_value(req("totals")?)?,
            rungs: opt(v, "rungs")?,
            rung_migrations: opt(v, "rung_migrations")?,
            serve: opt(v, "serve")?,
        })
    }
}

/// One rung's share of a block time-step: how many particles sat on it at
/// the end of the step and how many force evaluations it received across
/// the step's substeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RungCounters {
    /// Rung index (0 = coarsest, steps at `dt_max`).
    pub rung: u32,
    /// Particles on this rung when the step completed.
    pub population: u64,
    /// Per-particle force evaluations charged to this rung over the step.
    pub force_evals: u64,
}

impl StepProfile {
    pub fn new(threads: usize) -> Self {
        StepProfile { threads, ..Default::default() }
    }

    /// Assemble one multi-rank profile from per-rank profiles, each recorded
    /// independently on its own worker (e.g. serialized over a control
    /// channel from real OS processes). Span ranks are rewritten to the
    /// profile's position, per-rank totals become `per_worker[rank]`, and
    /// `wall_s` is the slowest rank's wall clock — the makespan of the step.
    pub fn from_rank_profiles(ranks: Vec<StepProfile>) -> StepProfile {
        let mut out = StepProfile::new(ranks.len());
        for (rank, rp) in ranks.into_iter().enumerate() {
            out.step = out.step.max(rp.step);
            out.wall_s = out.wall_s.max(rp.wall_s);
            for mut span in rp.spans {
                span.rank = rank;
                out.spans.push(span);
            }
            out.totals.merge(&rp.totals);
            out.per_worker.push(rp.totals);
            out.rung_migrations += rp.rung_migrations;
        }
        out
    }

    pub fn record(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Total busy time of one worker across all phases.
    pub fn busy(&self, rank: usize) -> f64 {
        self.spans.iter().filter(|s| s.rank == rank).map(Span::duration).sum()
    }

    /// Idle time of `rank` relative to the profile makespan.
    pub fn idle(&self, rank: usize) -> f64 {
        self.makespan() - self.busy(rank)
    }

    /// Latest span end (0 for an empty profile).
    pub fn makespan(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Σ busy / (threads · makespan); 1.0 for an empty or zero-width
    /// profile (nothing measured means nothing wasted).
    pub fn utilization(&self) -> f64 {
        let total: f64 = self.spans.iter().map(Span::duration).sum();
        let denom = self.threads as f64 * self.makespan();
        if denom == 0.0 {
            1.0
        } else {
            total / denom
        }
    }

    /// Total busy time recorded under `phase`, across all workers.
    pub fn phase_total(&self, phase: &str) -> f64 {
        self.spans.iter().filter(|s| s.phase == phase).map(Span::duration).sum()
    }

    /// `phase`'s share of all recorded busy time (0 when nothing recorded).
    pub fn phase_share(&self, phase: &str) -> f64 {
        let total: f64 = self.spans.iter().map(Span::duration).sum();
        if total == 0.0 {
            0.0
        } else {
            self.phase_total(phase) / total
        }
    }

    /// Distinct phase names in first-appearance order.
    pub fn phases(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.spans {
            if !out.contains(&s.phase) {
                out.push(s.phase.clone());
            }
        }
        out
    }

    /// max/mean interactions across `per_worker` (1.0 = perfect balance,
    /// also returned when no per-worker counters were recorded).
    pub fn imbalance(&self) -> f64 {
        if self.per_worker.is_empty() {
            return 1.0;
        }
        let max = self.per_worker.iter().map(Counters::interactions).max().unwrap_or(0) as f64;
        let mean = self.per_worker.iter().map(Counters::interactions).sum::<u64>() as f64
            / self.per_worker.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// max/mean busy time across workers within one phase (1.0 when the
    /// phase was not recorded).
    pub fn time_imbalance(&self, phase: &str) -> f64 {
        let mut busy = vec![0.0f64; self.threads.max(1)];
        for s in self.spans.iter().filter(|s| s.phase == phase) {
            if s.rank < busy.len() {
                busy[s.rank] += s.duration();
            }
        }
        let max = busy.iter().copied().fold(0.0, f64::max);
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("profile serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> StepProfile {
        let mut p = StepProfile::new(2);
        p.record(Span::new(0, 0, phase::BUILD, 0.0, 1.0));
        p.record(Span::new(0, 1, phase::WALK, 1.0, 2.0));
        p.record(Span::new(1, 1, phase::WALK, 1.0, 1.5));
        p.record(Span::new(1, 1, phase::KERNEL, 1.5, 3.0));
        p.per_worker = vec![
            Counters { p2p: 30, m2p: 10, ..Default::default() },
            Counters { p2p: 10, m2p: 10, ..Default::default() },
        ];
        for w in p.per_worker.clone() {
            p.totals.merge(&w);
        }
        p.rungs = vec![
            RungCounters { rung: 0, population: 3, force_evals: 3 },
            RungCounters { rung: 1, population: 5, force_evals: 10 },
        ];
        p.rung_migrations = 2;
        p
    }

    #[test]
    fn busy_idle_makespan_utilization() {
        let p = demo();
        assert_eq!(p.makespan(), 3.0);
        assert_eq!(p.busy(0), 2.0);
        assert_eq!(p.busy(1), 2.0);
        assert_eq!(p.idle(0), 1.0);
        assert!((p.utilization() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn phase_queries() {
        let p = demo();
        assert_eq!(p.phase_total(phase::WALK), 1.5);
        assert!((p.phase_share(phase::WALK) - 1.5 / 4.0).abs() < 1e-12);
        assert_eq!(p.phases(), vec!["build", "walk", "kernel"]);
        assert_eq!(p.phase_total("nonexistent"), 0.0);
        // walk busy: rank0 = 1.0, rank1 = 0.5 → max/mean = 1.0/0.75.
        assert!((p.time_imbalance(phase::WALK) - 1.0 / 0.75).abs() < 1e-12);
        assert_eq!(p.time_imbalance("nonexistent"), 1.0);
    }

    #[test]
    fn counter_imbalance() {
        let p = demo();
        // interactions: 40 and 20 → max/mean = 40/30.
        assert!((p.imbalance() - 40.0 / 30.0).abs() < 1e-12);
        assert_eq!(StepProfile::new(4).imbalance(), 1.0);
        assert_eq!(p.totals.interactions(), 60);
    }

    #[test]
    fn empty_profile_is_neutral() {
        let p = StepProfile::new(3);
        assert_eq!(p.makespan(), 0.0);
        assert_eq!(p.utilization(), 1.0);
        assert_eq!(p.phase_share(phase::FORCE), 0.0);
        assert!(p.phases().is_empty());
    }

    #[test]
    fn rank_profiles_merge_into_one_table() {
        let mut r0 = StepProfile::new(1);
        r0.record(Span::new(0, 0, phase::BUILD, 0.0, 1.0));
        r0.totals = Counters { p2p: 10, messages: 2, ..Default::default() };
        r0.wall_s = 1.0;
        let mut r1 = StepProfile::new(1);
        r1.record(Span::new(0, 0, phase::BUILD, 0.0, 2.0));
        r1.record(Span::new(0, 1, phase::FORCE, 2.0, 2.5));
        r1.totals = Counters { p2p: 30, messages: 4, ..Default::default() };
        r1.wall_s = 2.5;
        let merged = StepProfile::from_rank_profiles(vec![r0, r1]);
        assert_eq!(merged.threads, 2);
        assert_eq!(merged.spans.len(), 3);
        assert_eq!(merged.spans[1].rank, 1, "span ranks rewritten to position");
        assert_eq!(merged.totals.p2p, 40);
        assert_eq!(merged.totals.messages, 6);
        assert_eq!(merged.per_worker.len(), 2);
        assert_eq!(merged.per_worker[1].p2p, 30);
        assert_eq!(merged.wall_s, 2.5);
        assert!((merged.imbalance() - 30.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let mut p = demo();
        p.serve = Some(ServeCounters { queries: 9, rejected: 1, ..Default::default() });
        let back = StepProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }

    /// Profiles serialized before a field existed must still load, with the
    /// missing tail fields defaulting — this is what keeps committed
    /// baseline JSONs valid across schema growth.
    #[test]
    fn json_missing_tail_fields_default() {
        let zero = Counters::default();
        let old = format!(
            r#"{{"step":3,"threads":2,"wall_s":0.5,"spans":[],"per_worker":[],"totals":{}}}"#,
            serde_json::to_string(&zero).unwrap()
        );
        let p = StepProfile::from_json(&old).unwrap();
        assert_eq!(p.step, 3);
        assert!(p.rungs.is_empty());
        assert_eq!(p.rung_migrations, 0);
        assert_eq!(p.serve, None);
        assert!(StepProfile::from_json(r#"{"threads":1}"#).is_err(), "core fields stay required");
    }

    #[test]
    fn serve_counters_merge_semantics() {
        let mut a = ServeCounters {
            queries: 100,
            accepted: 10,
            rejected: 2,
            batches: 4,
            queue_depth_peak: 7,
            epochs_published: 5,
            epochs_retired: 3,
            epoch_lag_last: 1,
            epoch_lag_max: 2,
        };
        let b = ServeCounters {
            queries: 50,
            accepted: 5,
            rejected: 0,
            batches: 2,
            queue_depth_peak: 3,
            epochs_published: 6,
            epochs_retired: 4,
            epoch_lag_last: 0,
            epoch_lag_max: 1,
        };
        a.merge(&b);
        // Flow counters add; level counters (peaks, generation watermarks)
        // take the max; "last" follows the merged-in side.
        assert_eq!(a.queries, 150);
        assert_eq!(a.accepted, 15);
        assert_eq!(a.rejected, 2);
        assert_eq!(a.batches, 6);
        assert_eq!(a.queue_depth_peak, 7);
        assert_eq!(a.epochs_published, 6);
        assert_eq!(a.epochs_retired, 4);
        assert_eq!(a.epoch_lag_last, 0);
        assert_eq!(a.epoch_lag_max, 2);
    }

    #[test]
    fn shared_counters_accumulate_and_reset() {
        let s = SharedCounters::new();
        s.add(&Counters { p2p: 5, m2p: 2, mac_tests: 7, ..Default::default() });
        s.add(&Counters { p2p: 1, nodes_opened: 3, ..Default::default() });
        let snap = s.snapshot();
        assert_eq!(snap.p2p, 6);
        assert_eq!(snap.m2p, 2);
        assert_eq!(snap.mac_tests, 7);
        assert_eq!(snap.nodes_opened, 3);
        assert_eq!(snap.interactions(), 8);
        s.reset();
        assert_eq!(s.snapshot(), Counters::default());
    }

    #[test]
    fn counters_merge_all_fields() {
        let mut a = Counters {
            p2p: 1,
            m2p: 2,
            mac_tests: 3,
            nodes_opened: 4,
            group_accept: 5,
            group_reject: 6,
            group_mixed: 7,
            requests: 8,
            messages: 9,
            words: 10,
            lane_slots: 16,
            lane_useful: 12,
            list_hits: 6,
            list_misses: 2,
            list_bytes: 1024,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.p2p, 2);
        assert_eq!(a.words, 20);
        assert_eq!(a.interactions(), 6);
        assert_eq!(a.lane_slots, 32);
        assert_eq!(a.lane_useful, 24);
        assert_eq!(a.list_hits, 12);
        assert_eq!(a.list_misses, 4);
        assert_eq!(a.list_bytes, 2048);
    }

    #[test]
    fn list_hit_rate_ratio() {
        let c = Counters { list_hits: 9, list_misses: 3, ..Default::default() };
        assert!((c.list_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(Counters::default().list_hit_rate(), 0.0);
        let s = SharedCounters::new();
        s.add(&c);
        s.add(&Counters { list_hits: 1, list_bytes: 64, ..Default::default() });
        let snap = s.snapshot();
        assert_eq!(snap.list_hits, 10);
        assert_eq!(snap.list_misses, 3);
        assert_eq!(snap.list_bytes, 64);
    }

    /// Counter JSONs committed before the list-reuse fields existed (and any
    /// older schema) must still parse, with absent fields defaulting to zero.
    #[test]
    fn counters_parse_leniently() {
        let c: Counters = serde_json::from_str(r#"{"p2p":7,"m2p":3,"mac_tests":11}"#).unwrap();
        assert_eq!(c.p2p, 7);
        assert_eq!(c.m2p, 3);
        assert_eq!(c.mac_tests, 11);
        assert_eq!(c.list_hits, 0);
        assert_eq!(c.lane_slots, 0);
        // And the full round trip is lossless.
        let full =
            Counters { p2p: 1, list_hits: 2, list_misses: 3, list_bytes: 4, ..Default::default() };
        let back: Counters = serde_json::from_str(&serde_json::to_string(&full).unwrap()).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn lane_utilization_ratio() {
        let c = Counters { lane_slots: 80, lane_useful: 60, ..Default::default() };
        assert!((c.lane_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(Counters::default().lane_utilization(), 1.0);
        let s = SharedCounters::new();
        s.add(&c);
        s.add(&Counters { lane_slots: 20, lane_useful: 20, ..Default::default() });
        let snap = s.snapshot();
        assert_eq!(snap.lane_slots, 100);
        assert_eq!(snap.lane_useful, 80);
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let mut sw = Stopwatch::start();
        let a = sw.lap();
        let b = sw.elapsed();
        assert!(a >= 0.0 && b >= 0.0);
        if RECORDING {
            assert!(now() >= 0.0);
        } else {
            assert_eq!(now(), 0.0);
        }
    }

    #[test]
    fn span_duration_and_schema_fields() {
        let s = Span::new(2, 1, phase::FORCE, 0.5, 1.25);
        assert_eq!(s.duration(), 0.75);
        let j = serde_json::to_string(&s).unwrap();
        for key in ["rank", "superstep", "start", "end", "sent", "phase"] {
            assert!(j.contains(key), "span JSON missing {key}: {j}");
        }
    }
}
