//! Trend tests: the qualitative results of the paper's evaluation, asserted
//! as directions rather than absolute numbers, at test-friendly scales.

use barnes_hut::core::balance::Scheme;
use barnes_hut::core::{ParallelSim, SimConfig};
use barnes_hut::geom::{dataset_domain, dataset_scaled};
use barnes_hut::machine::{CostModel, FatTree, Hypercube, Machine};

fn run(
    dataset: &str,
    scale: f64,
    scheme: Scheme,
    p: usize,
    degree: u32,
    alpha: f64,
    warmup: usize,
) -> barnes_hut::core::IterationOutcome {
    let set = dataset_scaled(dataset, scale);
    let config = SimConfig {
        scheme,
        clusters_per_axis: 16,
        alpha,
        degree,
        domain: dataset_domain(dataset),
        ..Default::default()
    };
    let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
    let mut sim = ParallelSim::new(machine, config);
    for _ in 0..warmup {
        let _ = sim.run_iteration(&set.particles);
    }
    sim.run_iteration(&set.particles)
}

/// Table 1's core claim: runtime decreases with processor count.
#[test]
fn more_processors_less_time() {
    let t4 = run("g_160535", 0.02, Scheme::Spda, 4, 0, 0.67, 1).phases.total;
    let t16 = run("g_160535", 0.02, Scheme::Spda, 16, 0, 0.67, 1).phases.total;
    let t64 = run("g_160535", 0.02, Scheme::Spda, 64, 0, 0.67, 1).phases.total;
    assert!(t16 < t4, "p=4 {t4} vs p=16 {t16}");
    assert!(t64 < t16, "p=16 {t16} vs p=64 {t64}");
}

/// Table 1: SPDA beats SPSA on irregular data (after warm-up).
#[test]
fn spda_beats_spsa_on_irregular_data() {
    let spsa = run("g_326214", 0.02, Scheme::Spsa, 16, 0, 1.0, 2);
    let spda = run("g_326214", 0.02, Scheme::Spda, 16, 0, 1.0, 2);
    assert!(
        spda.phases.total < spsa.phases.total,
        "SPDA {} !< SPSA {}",
        spda.phases.total,
        spsa.phases.total
    );
}

/// Table 3: SPSA spends nothing on load balancing, SPDA a little; SPDA's
/// force phase is cheaper.
#[test]
fn phase_breakdown_trends() {
    let spsa = run("g_326214", 0.02, Scheme::Spsa, 16, 0, 1.0, 2);
    let spda = run("g_326214", 0.02, Scheme::Spda, 16, 0, 1.0, 2);
    assert_eq!(spsa.phases.load_balance, 0.0);
    assert!(spda.phases.load_balance > 0.0);
    assert!(spda.phases.force < spsa.phases.force);
}

/// §5.2.2 / Table 6: raising the multipole degree raises runtime but also
/// parallel efficiency (function shipping's key property).
#[test]
fn degree_raises_time_and_efficiency() {
    let d0 = run("g_160535", 0.02, Scheme::Dpda, 16, 0, 0.67, 2);
    let d4 = run("g_160535", 0.02, Scheme::Dpda, 16, 4, 0.67, 2);
    assert!(d4.phases.total > d0.phases.total);
    assert!(d4.efficiency > d0.efficiency, "efficiency {} -> {}", d0.efficiency, d4.efficiency);
}

/// Table 7: raising α lowers runtime and communication.
#[test]
fn alpha_lowers_time_and_communication() {
    let tight = run("g_160535", 0.02, Scheme::Dpda, 16, 0, 0.5, 2);
    let loose = run("g_160535", 0.02, Scheme::Dpda, 16, 0, 1.0, 2);
    assert!(loose.phases.total < tight.phases.total);
    assert!(loose.requests < tight.requests, "{} !< {}", loose.requests, tight.requests);
    assert!(loose.interactions < tight.interactions);
}

/// §6: the same run is faster on a machine with a better
/// compute/communication ratio.
#[test]
fn modern_machine_is_faster() {
    let set = dataset_scaled("g_160535", 0.02);
    let mk = |cost: CostModel| {
        let machine = Machine::new(FatTree::cm5(16), cost);
        let mut sim = ParallelSim::new(machine, SimConfig::default());
        sim.run_iteration(&set.particles).phases.total
    };
    let cm5 = mk(CostModel::cm5());
    let modern = mk(CostModel::modern());
    assert!(modern < cm5 / 50.0, "cm5 {cm5} vs modern {modern}");
}

/// §4.1: more clusters improve SPSA's load balance (up to overheads).
#[test]
fn more_clusters_balance_spsa() {
    let set = dataset_scaled("g_326214", 0.02);
    let imbalance_at = |c: u32| {
        let machine = Machine::new(Hypercube::new(16), CostModel::ncube2());
        let mut sim = ParallelSim::new(
            machine,
            SimConfig {
                scheme: Scheme::Spsa,
                clusters_per_axis: c,
                alpha: 1.0,
                domain: dataset_domain("g_326214"),
                ..Default::default()
            },
        );
        sim.run_iteration(&set.particles).imbalance
    };
    let coarse = imbalance_at(8);
    let fine = imbalance_at(32);
    assert!(fine < coarse, "imbalance {coarse} -> {fine}");
}

/// §3.3's easy case: "In many applications such as protein synthesis,
/// particle densities are largely uniform across the domain… the
/// variability in particle densities is less than 15–20%." For such data
/// the static SPSA scheme alone achieves good balance — no dynamic
/// assignment needed.
#[test]
fn uniform_densities_need_no_dynamic_balancing() {
    use barnes_hut::geom::uniform_cube;
    let set = uniform_cube(4000, 100.0, 77);
    let run = |scheme: Scheme| {
        let machine = Machine::new(Hypercube::new(16), CostModel::ncube2());
        let mut sim = ParallelSim::new(
            machine,
            SimConfig { scheme, clusters_per_axis: 16, ..Default::default() },
        );
        let _ = sim.run_iteration(&set.particles);
        sim.run_iteration(&set.particles)
    };
    let spsa = run(Scheme::Spsa);
    let spda = run(Scheme::Spda);
    // SPSA is already well balanced on uniform data…
    assert!(spsa.imbalance < 1.35, "uniform SPSA imbalance {}", spsa.imbalance);
    // …so SPDA's dynamic assignment buys little here (within 15%).
    assert!(
        spda.phases.total > spsa.phases.total * 0.85,
        "SPDA {} vs SPSA {}",
        spda.phases.total,
        spsa.phases.total
    );
}
