//! Property-based cross-crate equivalences: the parallel decompositions are
//! *exact* reformulations of the sequential treecode, for arbitrary particle
//! configurations and machine shapes.

use barnes_hut::core::balance::{spda_initial, spsa_assignment, Curve};
use barnes_hut::core::domain::ClusterGrid;
use barnes_hut::core::evalcore::{eval_from, eval_owned, EvalEnv};
use barnes_hut::core::funcship::{run_force_phase, ForceConfig};
use barnes_hut::core::partition::Partition;
use barnes_hut::geom::{multi_gaussian, plummer, GaussianSpec, PlummerSpec};
use barnes_hut::geom::{Aabb, Particle, ParticleSet, Vec3};
use barnes_hut::machine::{CostModel, Hypercube, Machine};
use barnes_hut::multipole::MultipoleTree;
use barnes_hut::sim::{Simulation, SimulationConfig};
use barnes_hut::threads::{ThreadConfig, ThreadSim};
use barnes_hut::timestep::{ActiveSet, BlockConfig, TimestepMode};
use barnes_hut::tree::build::{build, build_in_cell, BuildParams};
use barnes_hut::tree::group::{
    eval_gathered_monopole_masked, eval_group_monopole, gather_group, leaf_schedule,
    resolve_mixed_tails, InteractionBuffers,
};
use barnes_hut::tree::traverse::TraversalStats;
use barnes_hut::tree::{BarnesHutMac, GroupClass, GroupMac, KernelPrecision, Mac, MinDistMac};
use proptest::prelude::*;

fn arb_particles(max_n: usize) -> impl Strategy<Value = ParticleSet> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0, 0.1f64..2.0), 2..max_n)
        .prop_map(|points| {
            ParticleSet::new(
                points
                    .into_iter()
                    .enumerate()
                    .map(|(i, (x, y, z, m))| {
                        Particle::new(i as u32, m, Vec3::new(x, y, z), Vec3::ZERO)
                    })
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// local + shipped == sequential, for random particles, α, p, and s.
    #[test]
    fn function_shipping_is_exact(
        set in arb_particles(150),
        alpha in 0.3f64..1.5,
        log_p in 0u32..4,
        s in 1usize..8,
    ) {
        let p = 1usize << log_p;
        let cell = Aabb::origin_cube(100.0);
        let grid = ClusterGrid::new(8, cell);
        let tree = build_in_cell(
            &set.particles,
            cell,
            BuildParams { leaf_capacity: s, collapse: true, min_split_level: grid.level() },
        );
        let owners = spsa_assignment(&grid, p);
        let part = Partition::from_clusters(&tree, &grid, &owners, p);
        let mac = BarnesHutMac::new(alpha);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: 1e-6,
            degree: 0,
        };
        for particle in set.iter().take(20) {
            let me = part.owner_of_particle[particle.id as usize];
            let mut remote = Vec::new();
            let mut total = eval_owned(
                &env, particle.pos, Some(particle.id), me, &part.owner_of_node, None, &mut remote,
            );
            for &(owner, branch) in &remote {
                prop_assert_ne!(owner, me);
                let served = eval_from(&env, branch, particle.pos, Some(particle.id), None);
                total.merge(&served);
            }
            let (want, _) = barnes_hut::tree::potential_at(
                &tree, &set.particles, particle.pos, Some(particle.id), &mac, 1e-6,
            );
            prop_assert!(
                (total.phi - want).abs() <= 1e-9 * want.abs().max(1.0),
                "phi {} vs {}", total.phi, want
            );
        }
    }

    /// The full BSP protocol delivers the same potentials as the sequential
    /// evaluation, for random bin sizes and batches.
    #[test]
    fn bsp_protocol_is_exact(
        set in arb_particles(120),
        bin_size in 1usize..40,
        batch in 1usize..16,
    ) {
        let p = 8;
        let cell = Aabb::origin_cube(100.0);
        let grid = ClusterGrid::new(8, cell);
        let tree = build_in_cell(
            &set.particles,
            cell,
            BuildParams { leaf_capacity: 4, collapse: true, min_split_level: grid.level() },
        );
        let owners = spda_initial(&grid, p, Curve::Morton);
        let part = Partition::from_clusters(&tree, &grid, &owners, p);
        let mac = BarnesHutMac::new(0.7);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: 1e-6,
            degree: 0,
        };
        let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
        let run = run_force_phase(
            &machine, &env, &part, None, 0, false, ForceConfig { bin_size, batch, ..Default::default() },
        );
        for particle in set.iter() {
            let (want, _) = barnes_hut::tree::potential_at(
                &tree, &set.particles, particle.pos, Some(particle.id), &mac, 1e-6,
            );
            let got = run.potentials[particle.id as usize];
            prop_assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "particle {}: {} vs {}", particle.id, got, want
            );
        }
    }

    /// Costzones partitions cover every particle exactly once, whatever the
    /// weights.
    #[test]
    fn costzones_is_a_partition(
        set in arb_particles(150),
        p in 1usize..12,
        heavy in 0usize..100,
    ) {
        let cell = Aabb::origin_cube(100.0);
        let tree = build_in_cell(&set.particles, cell, BuildParams::default());
        let mut weights = vec![1.0; set.len()];
        if !weights.is_empty() {
            let idx = heavy % weights.len();
            weights[idx] = 1e6; // one pathologically heavy particle
        }
        let part = Partition::costzones_weighted(&tree, &weights, p);
        prop_assert!(part.check(&tree).is_ok());
        let lists = part.particles_by_owner();
        let total: usize = lists.iter().map(Vec::len).sum();
        prop_assert_eq!(total, set.len());
    }

    /// The group MAC's three-way classification brackets the per-point MAC:
    /// AcceptAll ⇒ every point in the bucket accepts, RejectAll ⇒ every
    /// point rejects — for random cells, buckets, and α, for both MACs.
    #[test]
    fn group_mac_is_conservative(
        cell_min in prop::array::uniform3(-50.0f64..50.0),
        cell_side in 0.5f64..40.0,
        bucket_min in prop::array::uniform3(-80.0f64..80.0),
        bucket_side in prop::array::uniform3(0.01f64..30.0),
        com_frac in prop::array::uniform3(0.05f64..0.95),
        alpha in 0.2f64..1.6,
    ) {
        let cell = Aabb::cube(Vec3::from_array(cell_min), cell_side);
        let bmin = Vec3::from_array(bucket_min);
        let bucket = Aabb::new(bmin, bmin + Vec3::from_array(bucket_side));
        let com = cell.min
            + Vec3::new(
                com_frac[0] * cell_side,
                com_frac[1] * cell_side,
                com_frac[2] * cell_side,
            );
        // Deterministic sample grid over the bucket, corners included.
        let mut samples = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    let f = |t: u32, lo: f64, hi: f64| lo + (hi - lo) * t as f64 / 3.0;
                    samples.push(Vec3::new(
                        f(i, bucket.min.x, bucket.max.x),
                        f(j, bucket.min.y, bucket.max.y),
                        f(k, bucket.min.z, bucket.max.z),
                    ));
                }
            }
        }
        let bh = BarnesHutMac::new(alpha);
        let md = MinDistMac::new(alpha);
        match GroupMac::classify(&bh, &cell, com, &bucket) {
            GroupClass::AcceptAll => {
                for &p in &samples {
                    prop_assert!(bh.accept(&cell, com, p));
                }
            }
            GroupClass::RejectAll => {
                for &p in &samples {
                    prop_assert!(!bh.accept(&cell, com, p));
                }
            }
            GroupClass::Mixed => {}
        }
        match GroupMac::classify(&md, &cell, com, &bucket) {
            GroupClass::AcceptAll => {
                for &p in &samples {
                    prop_assert!(md.accept(&cell, com, p));
                }
            }
            GroupClass::RejectAll => {
                for &p in &samples {
                    prop_assert!(!md.accept(&cell, com, p));
                }
            }
            GroupClass::Mixed => {}
        }
    }

    /// A rung hierarchy pinned to rung 0 is the global-dt leapfrog, bit for
    /// bit, for arbitrary particle sets, dt, and hierarchy depth: with every
    /// particle on rung 0 the scheduler performs exactly one full-sync
    /// substep per big step, its kick factors `dt_max/2^0 · ½` and drift
    /// span `2^L ticks · dt_max/2^L` are exact power-of-two arithmetic, and
    /// the full active set takes the executor's unmasked path.
    #[test]
    fn rung0_block_timesteps_are_bitwise_global_leapfrog(
        set in arb_particles(120),
        dt in 1e-4f64..1e-2,
        max_rung in 0u32..3,
        steps in 1usize..5,
    ) {
        let global = SimulationConfig { dt, eps: 1e-2, ..Default::default() };
        // A huge η makes the criterion dt exceed dt_max for every particle,
        // pinning all of them to rung 0 whatever the hierarchy depth.
        let block = SimulationConfig {
            timestep: TimestepMode::Block(BlockConfig {
                dt_max: dt,
                max_rung,
                eta: 1e12,
                eps: 1e-2,
            }),
            ..global
        };
        let mut a = Simulation::new(set.clone(), global);
        let mut b = Simulation::new(set, block);
        a.run(steps);
        b.run(steps);
        for (x, y) in a.particles.particles.iter().zip(&b.particles.particles) {
            prop_assert_eq!(x.pos, y.pos);
            prop_assert_eq!(x.vel, y.vel);
        }
    }

    /// Active-set force evaluation is a bitwise restriction of the full
    /// evaluation, for arbitrary particle sets and masks: active particles
    /// get identical accelerations and potentials, inactive ones get zero.
    #[test]
    fn active_set_forces_are_a_bitwise_restriction(
        set in arb_particles(150),
        mask_seed in 0u64..1000,
        stride in 2usize..5,
    ) {
        let n = set.len();
        let mask: Vec<bool> = (0..n)
            .map(|i| (i as u64).wrapping_mul(mask_seed + 7).is_multiple_of(stride as u64))
            .collect();
        let active = ActiveSet::from_mask(mask.clone());
        let mk = || ThreadSim::new(ThreadConfig { threads: 2, ..Default::default() });
        let full = mk().compute_forces(&set.particles);
        let part = mk().compute_forces_active(&set.particles, &active);
        for (i, &is_active) in mask.iter().enumerate() {
            if is_active {
                prop_assert_eq!(part.accels[i], full.accels[i]);
                prop_assert_eq!(part.potentials[i], full.potentials[i]);
            } else {
                prop_assert_eq!(part.accels[i], barnes_hut::geom::Vec3::ZERO);
                prop_assert_eq!(part.potentials[i], 0.0);
            }
        }
    }

    /// Grouped evaluation equals the per-particle walk for arbitrary
    /// particle sets: exact p2p counts, ≤1e-12-relative values.
    #[test]
    fn grouped_walk_is_exact_for_random_sets(
        set in arb_particles(200),
        alpha in 0.3f64..1.3,
        s in 1usize..16,
    ) {
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(s));
        let mac = BarnesHutMac::new(alpha);
        let eps = 1e-4;
        let mut buf = InteractionBuffers::new();
        let mut grouped = TraversalStats::default();
        for leaf in leaf_schedule(&tree) {
            let st = eval_group_monopole(
                &tree, &set.particles, leaf, &mac, eps, &mut buf,
                |pi, phi, acc, _| {
                    let p = &set.particles[pi as usize];
                    let (phi_ref, _) = barnes_hut::tree::potential_at(
                        &tree, &set.particles, p.pos, Some(p.id), &mac, eps,
                    );
                    let (acc_ref, _) = barnes_hut::tree::accel_on(
                        &tree, &set.particles, p.pos, Some(p.id), &mac, eps,
                    );
                    assert!((phi - phi_ref).abs() <= 1e-12 * phi_ref.abs().max(1.0));
                    assert!(acc.dist(acc_ref) <= 1e-12 * acc_ref.norm().max(1.0));
                },
            );
            grouped.merge(st);
        }
        let mut reference = TraversalStats::default();
        for p in set.iter() {
            let (_, st) = barnes_hut::tree::potential_at(
                &tree, &set.particles, p.pos, Some(p.id), &mac, eps,
            );
            reference.merge(st);
        }
        prop_assert_eq!(grouped.p2p, reference.p2p);
        prop_assert_eq!(grouped, reference);
    }

    /// The vectorised f64 kernels agree with the scalar grouped path to
    /// ≤1e-12 relative across every kernel entry point — split, masked, and
    /// with resolved mixed tails — with exact interaction counts throughout.
    /// (The fused entry point is the split pair by construction; see
    /// `grouped_walk_is_exact_for_random_sets` above.)
    #[test]
    fn simd_f64_kernels_match_scalar_grouped_path(
        set in arb_particles(150),
        alpha in 0.3f64..1.3,
        s in 1usize..16,
        stride in 2usize..5,
    ) {
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(s));
        let mac = BarnesHutMac::new(alpha);
        let eps = 1e-4;
        let mask: Vec<bool> = (0..set.len()).map(|i| i % stride != 1).collect();
        let mut buf = InteractionBuffers::new();
        let tol = 1e-12;
        for leaf in leaf_schedule(&tree) {
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
            let run = |precision: KernelPrecision,
                       active: Option<&[bool]>,
                       buf: &InteractionBuffers| {
                let mut out: Vec<(u32, f64, Vec3, u64)> = Vec::new();
                eval_gathered_monopole_masked(
                    &tree, &set.particles, leaf, &mac, eps, precision, buf, active,
                    |pi, phi, acc, it| out.push((pi, phi, acc, it)),
                );
                out
            };
            // Replay path (tails unresolved), full and masked; then the
            // tails-resolved path. Each must put the SIMD kernels within
            // 1e-12 relative of the scalar grouped loop.
            let compare = |active: Option<&[bool]>, buf: &InteractionBuffers| {
                let scalar = run(KernelPrecision::ScalarF64, active, buf);
                let simd = run(KernelPrecision::F64, active, buf);
                prop_assert_eq!(scalar.len(), simd.len());
                for (a, b) in scalar.iter().zip(&simd) {
                    prop_assert_eq!(a.0, b.0);
                    prop_assert_eq!(a.3, b.3, "interaction counts are precision-independent");
                    prop_assert!(
                        (a.1 - b.1).abs() <= tol * a.1.abs().max(1.0),
                        "phi {} vs scalar {}", b.1, a.1,
                    );
                    prop_assert!(
                        a.2.dist(b.2) <= tol * a.2.norm().max(1.0),
                        "acc {:?} vs scalar {:?}", b.2, a.2,
                    );
                }
                Ok(())
            };
            compare(None, &buf)?;
            compare(Some(mask.as_slice()), &buf)?;
            resolve_mixed_tails(&tree, &set.particles, leaf, &mac, &mut buf, None);
            compare(None, &buf)?;
        }
    }

    /// Mixed precision (f32 lanes, f64 accumulation) stays inside the θ-MAC
    /// discretisation envelope at the paper's α = 0.67: its RMS force error
    /// against O(n²) direct summation exceeds the f64 path's by at most 25%
    /// plus an absolute floor for near-cancelling configurations.
    #[test]
    fn mixed_f32_error_stays_within_mac_envelope(
        set in arb_particles(150),
        s in 2usize..16,
    ) {
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(s));
        let mac = BarnesHutMac::new(0.67);
        let eps = 1e-4;
        let n = set.len();
        let mut buf = InteractionBuffers::new();
        let mut acc_f64 = vec![Vec3::ZERO; n];
        let mut acc_mixed = vec![Vec3::ZERO; n];
        for leaf in leaf_schedule(&tree) {
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
            buf.prepare_f32();
            eval_gathered_monopole_masked(
                &tree, &set.particles, leaf, &mac, eps, KernelPrecision::F64, &buf, None,
                |pi, _, acc, _| acc_f64[pi as usize] = acc,
            );
            eval_gathered_monopole_masked(
                &tree, &set.particles, leaf, &mac, eps, KernelPrecision::MixedF32, &buf, None,
                |pi, _, acc, _| acc_mixed[pi as usize] = acc,
            );
        }
        let exact: Vec<Vec3> = set
            .iter()
            .map(|p| barnes_hut::tree::direct::accel_direct(&set.particles, p.pos, Some(p.id), eps))
            .collect();
        let rms = |approx: &[Vec3]| {
            let (mut num, mut den) = (0.0f64, 0.0f64);
            for (a, e) in approx.iter().zip(&exact) {
                num += a.dist_sq(*e);
                den += e.norm_sq();
            }
            if den == 0.0 { 0.0 } else { (num / den).sqrt() }
        };
        let err_f64 = rms(&acc_f64);
        let err_mixed = rms(&acc_mixed);
        prop_assert!(
            err_mixed <= err_f64 * 1.25 + 5e-6,
            "mixed rms error {} exceeds envelope of f64 rms error {}", err_mixed, err_f64,
        );
    }
}

/// Grouped vs per-particle agreement over the paper's benchmark
/// distributions: exact `TraversalStats::p2p` and ≤1e-12-relative potentials
/// and accelerations, for monopole and degree-3 expansions at α ∈ {0.67, 1}.
#[test]
fn grouped_walks_match_per_particle_on_benchmark_distributions() {
    let eps = 1e-4;
    let distributions: Vec<(&str, barnes_hut::geom::ParticleSet)> = vec![
        ("plummer", plummer(PlummerSpec { n: 1000, seed: 31, ..Default::default() })),
        (
            "multi_gaussian",
            multi_gaussian(GaussianSpec { n: 1000, clusters: 4, seed: 32, ..Default::default() }),
        ),
    ];
    for (name, set) in &distributions {
        for degree in [0u32, 3] {
            for alpha in [0.67, 1.0] {
                let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
                let mt = MultipoleTree::new(&tree, &set.particles, degree);
                let mac = BarnesHutMac::new(alpha);
                let mut buf = InteractionBuffers::new();
                let mut grouped = TraversalStats::default();
                let mut covered = 0usize;
                for leaf in leaf_schedule(&tree) {
                    let st = if degree == 0 {
                        eval_group_monopole(
                            &tree,
                            &set.particles,
                            leaf,
                            &mac,
                            eps,
                            &mut buf,
                            |pi, phi, acc, _| {
                                covered += 1;
                                let p = &set.particles[pi as usize];
                                let (phi_ref, _) = barnes_hut::tree::potential_at(
                                    &tree,
                                    &set.particles,
                                    p.pos,
                                    Some(p.id),
                                    &mac,
                                    eps,
                                );
                                let (acc_ref, _) = barnes_hut::tree::accel_on(
                                    &tree,
                                    &set.particles,
                                    p.pos,
                                    Some(p.id),
                                    &mac,
                                    eps,
                                );
                                assert!(
                                    (phi - phi_ref).abs() <= 1e-12 * phi_ref.abs().max(1.0),
                                    "{name} deg {degree} α {alpha}: phi {phi} vs {phi_ref}"
                                );
                                assert!(
                                    acc.dist(acc_ref) <= 1e-12 * acc_ref.norm().max(1.0),
                                    "{name} deg {degree} α {alpha}: acc mismatch"
                                );
                            },
                        )
                    } else {
                        mt.eval_group(
                            &tree,
                            &set.particles,
                            leaf,
                            &mac,
                            eps,
                            &mut buf,
                            |pi, phi, acc, _| {
                                covered += 1;
                                let p = &set.particles[pi as usize];
                                let (phi_ref, acc_ref, _) =
                                    mt.eval(&tree, &set.particles, p.pos, Some(p.id), &mac, eps);
                                assert!(
                                    (phi - phi_ref).abs() <= 1e-12 * phi_ref.abs().max(1.0),
                                    "{name} deg {degree} α {alpha}: phi {phi} vs {phi_ref}"
                                );
                                assert!(
                                    acc.dist(acc_ref) <= 1e-12 * acc_ref.norm().max(1.0),
                                    "{name} deg {degree} α {alpha}: acc mismatch"
                                );
                            },
                        )
                    };
                    grouped.merge(st);
                }
                assert_eq!(covered, set.len());
                let mut reference = TraversalStats::default();
                for p in set.iter() {
                    let (_, _, st) = mt.eval(&tree, &set.particles, p.pos, Some(p.id), &mac, eps);
                    reference.merge(st);
                }
                assert_eq!(
                    grouped.p2p, reference.p2p,
                    "{name} deg {degree} α {alpha}: p2p counts differ"
                );
                assert_eq!(grouped, reference, "{name} deg {degree} α {alpha}");
            }
        }
    }
}
