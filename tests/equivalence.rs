//! Property-based cross-crate equivalences: the parallel decompositions are
//! *exact* reformulations of the sequential treecode, for arbitrary particle
//! configurations and machine shapes.

use barnes_hut::core::balance::{spda_initial, spsa_assignment, Curve};
use barnes_hut::core::domain::ClusterGrid;
use barnes_hut::core::evalcore::{eval_from, eval_owned, EvalEnv};
use barnes_hut::core::funcship::{run_force_phase, ForceConfig};
use barnes_hut::core::partition::Partition;
use barnes_hut::geom::{Aabb, Particle, ParticleSet, Vec3};
use barnes_hut::machine::{CostModel, Hypercube, Machine};
use barnes_hut::tree::build::{build_in_cell, BuildParams};
use barnes_hut::tree::BarnesHutMac;
use proptest::prelude::*;

fn arb_particles(max_n: usize) -> impl Strategy<Value = ParticleSet> {
    proptest::collection::vec(
        (0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0, 0.1f64..2.0),
        2..max_n,
    )
    .prop_map(|points| {
        ParticleSet::new(
            points
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, z, m))| {
                    Particle::new(i as u32, m, Vec3::new(x, y, z), Vec3::ZERO)
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// local + shipped == sequential, for random particles, α, p, and s.
    #[test]
    fn function_shipping_is_exact(
        set in arb_particles(150),
        alpha in 0.3f64..1.5,
        log_p in 0u32..4,
        s in 1usize..8,
    ) {
        let p = 1usize << log_p;
        let cell = Aabb::origin_cube(100.0);
        let grid = ClusterGrid::new(8, cell);
        let tree = build_in_cell(
            &set.particles,
            cell,
            BuildParams { leaf_capacity: s, collapse: true, min_split_level: grid.level() },
        );
        let owners = spsa_assignment(&grid, p);
        let part = Partition::from_clusters(&tree, &grid, &owners, p);
        let mac = BarnesHutMac::new(alpha);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: 1e-6,
            degree: 0,
        };
        for particle in set.iter().take(20) {
            let me = part.owner_of_particle[particle.id as usize];
            let mut remote = Vec::new();
            let mut total = eval_owned(
                &env, particle.pos, Some(particle.id), me, &part.owner_of_node, None, &mut remote,
            );
            for &(owner, branch) in &remote {
                prop_assert_ne!(owner, me);
                let served = eval_from(&env, branch, particle.pos, Some(particle.id), None);
                total.merge(&served);
            }
            let (want, _) = barnes_hut::tree::potential_at(
                &tree, &set.particles, particle.pos, Some(particle.id), &mac, 1e-6,
            );
            prop_assert!(
                (total.phi - want).abs() <= 1e-9 * want.abs().max(1.0),
                "phi {} vs {}", total.phi, want
            );
        }
    }

    /// The full BSP protocol delivers the same potentials as the sequential
    /// evaluation, for random bin sizes and batches.
    #[test]
    fn bsp_protocol_is_exact(
        set in arb_particles(120),
        bin_size in 1usize..40,
        batch in 1usize..16,
    ) {
        let p = 8;
        let cell = Aabb::origin_cube(100.0);
        let grid = ClusterGrid::new(8, cell);
        let tree = build_in_cell(
            &set.particles,
            cell,
            BuildParams { leaf_capacity: 4, collapse: true, min_split_level: grid.level() },
        );
        let owners = spda_initial(&grid, p, Curve::Morton);
        let part = Partition::from_clusters(&tree, &grid, &owners, p);
        let mac = BarnesHutMac::new(0.7);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: 1e-6,
            degree: 0,
        };
        let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
        let run = run_force_phase(
            &machine, &env, &part, None, 0, false, ForceConfig { bin_size, batch, ..Default::default() },
        );
        for particle in set.iter() {
            let (want, _) = barnes_hut::tree::potential_at(
                &tree, &set.particles, particle.pos, Some(particle.id), &mac, 1e-6,
            );
            let got = run.potentials[particle.id as usize];
            prop_assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "particle {}: {} vs {}", particle.id, got, want
            );
        }
    }

    /// Costzones partitions cover every particle exactly once, whatever the
    /// weights.
    #[test]
    fn costzones_is_a_partition(
        set in arb_particles(150),
        p in 1usize..12,
        heavy in 0usize..100,
    ) {
        let cell = Aabb::origin_cube(100.0);
        let tree = build_in_cell(&set.particles, cell, BuildParams::default());
        let mut weights = vec![1.0; set.len()];
        if !weights.is_empty() {
            let idx = heavy % weights.len();
            weights[idx] = 1e6; // one pathologically heavy particle
        }
        let part = Partition::costzones_weighted(&tree, &weights, p);
        prop_assert!(part.check(&tree).is_ok());
        let lists = part.particles_by_owner();
        let total: usize = lists.iter().map(Vec::len).sum();
        prop_assert_eq!(total, set.len());
    }
}
