//! Cross-crate integration: the simulated message-passing formulations, the
//! real shared-memory executor, and the sequential treecode must all tell
//! the same physical story.

use barnes_hut::core::balance::Scheme;
use barnes_hut::core::{ParallelSim, SimConfig};
use barnes_hut::geom::{dataset_scaled, plummer, PlummerSpec};
use barnes_hut::machine::{CostModel, FatTree, Hypercube, Machine};
use barnes_hut::threads::{Partitioning, ThreadConfig, ThreadSim};
use barnes_hut::tree::{build, direct, BarnesHutMac, BuildParams};

/// The simulated-machine force phase and the real-thread executor compute
/// the same potentials (identical traversal decisions on cluster-scheme
/// trees is not guaranteed — different roots — so compare against direct
/// summation instead).
#[test]
fn simulated_and_threaded_executors_agree_with_direct() {
    let set = plummer(PlummerSpec { n: 1_200, seed: 33, ..Default::default() });
    let eps = 1e-4;
    let exact = direct::all_potentials_direct(&set.particles, eps);

    // Simulated 16-processor machine, SPDA.
    let machine = Machine::new(Hypercube::new(16), CostModel::ncube2());
    let mut sim = ParallelSim::new(
        machine,
        SimConfig { scheme: Scheme::Spda, alpha: 0.5, ..Default::default() },
    );
    let out = sim.run_iteration(&set.particles);
    let err_sim = direct::fractional_error(&out.potentials, &exact);
    assert!(err_sim < 0.01, "simulated-machine error {err_sim}");

    // Real threads.
    let mut threads = ThreadSim::new(ThreadConfig {
        threads: 3,
        alpha: 0.5,
        partitioning: Partitioning::MortonZones,
        ..Default::default()
    });
    let forces = threads.compute_forces(&set.particles);
    let err_thr = direct::fractional_error(&forces.potentials, &exact);
    assert!(err_thr < 0.01, "threaded error {err_thr}");
}

/// All three schemes on both simulated machines produce accurate physics
/// and consistent interaction counts.
#[test]
fn schemes_and_machines_cross_product() {
    let set = dataset_scaled("s_10g_b", 0.04);
    let eps = 1e-4;
    let exact = direct::all_potentials_direct(&set.particles, eps);
    for scheme in [Scheme::Spsa, Scheme::Spda, Scheme::Dpda] {
        for fat_tree in [false, true] {
            let config = SimConfig { scheme, clusters_per_axis: 16, ..Default::default() };
            let out = if fat_tree {
                let m = Machine::new(FatTree::cm5(16), CostModel::cm5());
                ParallelSim::new(m, config).run_iteration(&set.particles)
            } else {
                let m = Machine::new(Hypercube::new(16), CostModel::ncube2());
                ParallelSim::new(m, config).run_iteration(&set.particles)
            };
            let err = direct::fractional_error(&out.potentials, &exact);
            assert!(err < 0.05, "{scheme:?} fat_tree={fat_tree}: error {err}");
            assert!(out.interactions > set.len() as u64);
            assert!(out.phases.total > 0.0);
        }
    }
}

/// Multi-timestep simulation with treecode forces conserves energy.
#[test]
fn treecode_simulation_conserves_energy() {
    use barnes_hut::sim::{Simulation, SimulationConfig};
    let set = plummer(PlummerSpec { n: 300, seed: 9, ..Default::default() });
    let mut sim = Simulation::new(
        set,
        SimulationConfig {
            dt: 2e-3,
            alpha: 0.3,
            eps: 0.05,
            diag_every: 20,
            threads: 2,
            ..Default::default()
        },
    );
    sim.run(60);
    let drift = sim.diagnostics.max_drift();
    assert!(drift < 1e-2, "energy drift {drift}");
}

/// Tree invariants hold on every paper dataset (small scale).
#[test]
fn all_paper_datasets_build_valid_trees() {
    for spec in barnes_hut::geom::PAPER_DATASETS {
        let set = dataset_scaled(spec.name, 0.01);
        let tree = build::build(&set.particles, BuildParams::default());
        tree.check_invariants(set.len()).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        // a quick force sanity check on one particle
        let mac = BarnesHutMac::new(0.7);
        let p = &set.particles[set.len() / 2];
        let (acc, stats) =
            barnes_hut::tree::accel_on(&tree, &set.particles, p.pos, Some(p.id), &mac, 1e-4);
        assert!(acc.is_finite(), "{}", spec.name);
        assert!(stats.interactions() > 0, "{}", spec.name);
    }
}

/// Snapshots round-trip through the facade.
#[test]
fn snapshot_roundtrip_via_facade() {
    use barnes_hut::sim::{load_snapshot, save_snapshot};
    let set = plummer(PlummerSpec { n: 64, seed: 5, ..Default::default() });
    let path = std::env::temp_dir().join("bhut_e2e_snap.json");
    save_snapshot(&path, 0.5, &set).unwrap();
    let snap = load_snapshot(&path).unwrap();
    assert_eq!(snap.particles.len(), 64);
    std::fs::remove_file(&path).ok();
}
